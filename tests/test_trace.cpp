/**
 * @file
 * Tests for trace recording, serialization, and replay.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "api/system.hh"
#include "api/trace.hh"
#include "workloads/workload.hh"

using namespace bbb;

namespace
{

SystemConfig
cfg2()
{
    SystemConfig cfg;
    cfg.num_cores = 2;
    cfg.l1d.size_bytes = 8_KiB;
    cfg.llc.size_bytes = 32_KiB;
    cfg.dram.size_bytes = 64_MiB;
    cfg.nvmm.size_bytes = 64_MiB;
    cfg.mode = PersistMode::BbbMemSide;
    return cfg;
}

struct TempFile
{
    std::string path;
    explicit TempFile(const char *name)
        : path(std::string(::testing::TempDir()) + name)
    {
    }
    ~TempFile() { std::remove(path.c_str()); }
};

} // namespace

TEST(Trace, RecordsEveryIssuedOp)
{
    System sys(cfg2());
    TraceRecorder rec(sys);
    Addr a = sys.heap().alloc(0, 64, 64);
    sys.onThread(0, [&](ThreadContext &tc) {
        tc.store64(a, 1);
        tc.load64(a);
        tc.compute(5);
    });
    sys.run();
    const Trace &t = rec.trace();
    ASSERT_EQ(t.ops.size(), 2u);
    ASSERT_EQ(t.ops[0].size(), 3u);
    EXPECT_EQ(t.ops[0][0].kind, OpKind::Store);
    EXPECT_EQ(t.ops[0][0].addr, a);
    EXPECT_EQ(t.ops[0][0].data, 1u);
    EXPECT_EQ(t.ops[0][1].kind, OpKind::Load);
    EXPECT_EQ(t.ops[0][2].kind, OpKind::Advance);
    EXPECT_TRUE(t.ops[1].empty());
}

TEST(Trace, WriteReadRoundTrip)
{
    Trace t;
    t.ops.resize(2);
    t.ops[0].push_back({OpKind::Store, 1000, 8, 42, 0});
    t.ops[0].push_back({OpKind::Load, 1008, 4, 0, 0});
    t.ops[0].push_back({OpKind::Flush, 1000, 1, 0, 0});
    t.ops[0].push_back({OpKind::Fence, kBadAddr, 0, 0, 0});
    t.ops[1].push_back({OpKind::Advance, kBadAddr, 0, 0, 77});

    TempFile f("bbb_trace_roundtrip.txt");
    writeTrace(t, f.path);
    Trace r = readTrace(f.path);
    ASSERT_EQ(r.ops.size(), 2u);
    ASSERT_EQ(r.ops[0].size(), 4u);
    EXPECT_EQ(r.ops[0][0].kind, OpKind::Store);
    EXPECT_EQ(r.ops[0][0].addr, 1000u);
    EXPECT_EQ(r.ops[0][0].data, 42u);
    EXPECT_EQ(r.ops[0][1].size, 4u);
    EXPECT_EQ(r.ops[0][2].kind, OpKind::Flush);
    EXPECT_EQ(r.ops[0][3].kind, OpKind::Fence);
    ASSERT_EQ(r.ops[1].size(), 1u);
    EXPECT_EQ(r.ops[1][0].cycles, 77u);
}

TEST(Trace, ReplayReproducesTimingExactly)
{
    // Record a real workload run...
    Trace trace;
    Tick original_time = 0;
    std::uint64_t original_writes = 0;
    {
        System sys(cfg2());
        TraceRecorder rec(sys);
        WorkloadParams p;
        p.ops_per_thread = 150;
        p.initial_elements = 100;
        auto wl = makeWorkload("hashmap", p);
        wl->install(sys);
        sys.run();
        original_time = sys.executionTime();
        original_writes = sys.effectiveNvmmWrites();
        trace = rec.takeTrace();
    }
    EXPECT_GT(trace.totalOps(), 0u);

    // ...and replay it on a fresh machine of the same configuration.
    System sys(cfg2());
    bindTraceReplay(sys, trace);
    sys.run();
    EXPECT_EQ(sys.executionTime(), original_time);
    EXPECT_EQ(sys.effectiveNvmmWrites(), original_writes);
}

TEST(Trace, ReplayOnDifferentModeChangesBehaviourNotValues)
{
    Trace trace;
    {
        System sys(cfg2());
        TraceRecorder rec(sys);
        Addr a = sys.heap().alloc(0, 64, 64);
        sys.onThread(0, [&](ThreadContext &tc) {
            for (unsigned i = 1; i <= 8; ++i)
                tc.store64(a + 8 * (i % 8), i);
        });
        sys.run();
        trace = rec.takeTrace();
    }

    // The same store stream through an eADR machine produces the same
    // architectural values.
    SystemConfig ecfg = cfg2();
    ecfg.mode = PersistMode::Eadr;
    System sys(ecfg);
    bindTraceReplay(sys, trace);
    sys.run();
    Addr a = sys.heap().alloc(0, 64, 64); // same deterministic address
    EXPECT_EQ(sys.peek64(a), 8u);         // i=8 hit slot 0 last
}

TEST(Trace, ReplayedCrashIsConsistent)
{
    Trace trace;
    WorkloadParams p;
    p.ops_per_thread = 300;
    p.initial_elements = 0;
    {
        System sys(cfg2());
        TraceRecorder rec(sys);
        auto wl = makeWorkload("linkedlist", p);
        wl->install(sys);
        sys.run();
        trace = rec.takeTrace();
    }

    System sys(cfg2());
    bindTraceReplay(sys, trace);
    sys.runAndCrashAt(nsToTicks(5000));
    // The replayed crash image passes the same recovery check.
    auto wl = makeWorkload("linkedlist", p);
    // Checker needs prepare-side state (roots): rebuild it on a scratch
    // system sharing the deterministic heap layout.
    // The linked-list checker only needs root slots, which are fixed.
    System scratch(cfg2());
    auto checker = makeWorkload("linkedlist", p);
    checker->prepare(scratch);
    RecoveryResult res = checker->checkRecovery(sys.pmemImage());
    EXPECT_EQ(res.torn, 0u);
    EXPECT_EQ(res.dangling, 0u);
}

TEST(TraceDeath, TooManyStreamsRejected)
{
    Trace t;
    t.ops.resize(3);
    SystemConfig cfg = cfg2(); // 2 cores
    System sys(cfg);
    EXPECT_DEATH(bindTraceReplay(sys, t), "streams");
}
