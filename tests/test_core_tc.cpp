/**
 * @file
 * Unit tests for the core model and thread context: op accounting, store
 * buffering behaviour, mode-gated persist instructions, compute timing,
 * and stall handling.
 */

#include <gtest/gtest.h>

#include "api/system.hh"

using namespace bbb;

namespace
{

SystemConfig
cfg1(PersistMode mode)
{
    SystemConfig cfg;
    cfg.num_cores = 1;
    cfg.l1d.size_bytes = 8_KiB;
    cfg.llc.size_bytes = 32_KiB;
    cfg.dram.size_bytes = 64_MiB;
    cfg.nvmm.size_bytes = 64_MiB;
    cfg.mode = mode;
    return cfg;
}

} // namespace

TEST(Core, LoadReturnsStoredValueThroughSb)
{
    System sys(cfg1(PersistMode::Eadr));
    Addr a = sys.heap().alloc(0, 8);
    std::uint64_t seen = 0;
    sys.onThread(0, [&](ThreadContext &tc) {
        tc.store64(a, 31337);
        seen = tc.load64(a); // forwarded from the store buffer
    });
    sys.run();
    EXPECT_EQ(seen, 31337u);
}

TEST(Core, SubWordAccesses)
{
    System sys(cfg1(PersistMode::Eadr));
    Addr a = sys.heap().alloc(0, 8);
    std::uint32_t lo = 0, hi = 0;
    sys.onThread(0, [&](ThreadContext &tc) {
        tc.store64(a, 0xAAAAAAAABBBBBBBBull);
        tc.store32(a + 4, 0xCCCCCCCC);
        lo = tc.load32(a);
        hi = tc.load32(a + 4);
    });
    sys.run();
    EXPECT_EQ(lo, 0xBBBBBBBBu);
    EXPECT_EQ(hi, 0xCCCCCCCCu);
}

TEST(Core, ComputeAdvancesTimeExactly)
{
    System sys(cfg1(PersistMode::Eadr));
    Tick t0 = 0, t1 = 0;
    sys.onThread(0, [&](ThreadContext &tc) {
        t0 = tc.now();
        tc.compute(1000);
        t1 = tc.now();
    });
    sys.run();
    EXPECT_EQ(t1 - t0, sys.config().cycles(1000));
}

TEST(Core, FinishTickReflectsWork)
{
    System sys(cfg1(PersistMode::Eadr));
    sys.onThread(0, [&](ThreadContext &tc) { tc.compute(500); });
    Tick end = sys.run();
    EXPECT_GE(end, sys.config().cycles(500));
    EXPECT_TRUE(sys.core(0).finished());
    EXPECT_EQ(sys.core(0).finishTick(), end);
}

TEST(Core, OpCountersTrack)
{
    System sys(cfg1(PersistMode::AdrPmem));
    Addr a = sys.heap().alloc(0, 8);
    sys.onThread(0, [&](ThreadContext &tc) {
        tc.store64(a, 1);
        tc.load64(a);
        tc.writeBack(a);
        tc.persistBarrier();
    });
    sys.run();
    EXPECT_EQ(sys.stats().lookup("core0", "stores"), 1u);
    EXPECT_EQ(sys.stats().lookup("core0", "loads"), 1u);
    EXPECT_EQ(sys.stats().lookup("core0", "flushes"), 1u);
    EXPECT_EQ(sys.stats().lookup("core0", "fences"), 1u);
}

TEST(Core, PersistInstructionsAreNoopsOutsidePmem)
{
    for (PersistMode mode : {PersistMode::Eadr, PersistMode::BbbMemSide,
                             PersistMode::AdrUnsafe}) {
        System sys(cfg1(mode));
        Addr a = sys.heap().alloc(0, 8);
        sys.onThread(0, [&](ThreadContext &tc) {
            tc.store64(a, 1);
            tc.writeBack(a);
            tc.persistBarrier();
        });
        sys.run();
        EXPECT_EQ(sys.stats().lookup("core0", "flushes"), 0u)
            << persistModeName(mode);
        EXPECT_EQ(sys.stats().lookup("core0", "fences"), 0u);
    }
}

TEST(Core, AutoStrictInstrumentsEveryPersistingStore)
{
    SystemConfig cfg = cfg1(PersistMode::AdrPmem);
    cfg.pmem_auto_strict = true;
    System sys(cfg);
    Addr p = sys.heap().alloc(0, 64, 64);
    Addr d = 4096; // DRAM: not instrumented
    sys.onThread(0, [&](ThreadContext &tc) {
        tc.store64(p, 1);
        tc.store64(p + 8, 2);
        tc.store64(d, 3);
    });
    sys.run();
    EXPECT_EQ(sys.stats().lookup("core0", "flushes"), 2u);
    EXPECT_EQ(sys.stats().lookup("core0", "fences"), 2u);
}

TEST(Core, FenceWaitsForStoreBufferDrain)
{
    System sys(cfg1(PersistMode::AdrPmem));
    Addr p = sys.heap().alloc(0, 64, 64);
    sys.onThread(0, [&](ThreadContext &tc) {
        tc.store64(p, 1); // cold NVMM block: slow retire
        tc.persistBarrier();
        // After the barrier the store buffer must be empty.
    });
    sys.run();
    EXPECT_EQ(sys.stats().lookup("sb0", "retired"), 1u);
}

TEST(Core, StrictStoreIsDurableAtWpqAfterFence)
{
    SystemConfig cfg = cfg1(PersistMode::AdrPmem);
    cfg.pmem_auto_strict = true;
    System sys(cfg);
    Addr p = sys.heap().alloc(0, 8);
    sys.onThread(0, [&](ThreadContext &tc) { tc.store64(p, 0xd00d); });
    sys.run();
    // ADR: WPQ content survives the crash even in PMEM mode.
    sys.crashNow();
    EXPECT_EQ(sys.pmemImage().read64(p), 0xd00du);
}

TEST(Core, SbFullStallsAreCounted)
{
    SystemConfig cfg = cfg1(PersistMode::Eadr);
    cfg.store_buffer.entries = 2;
    System sys(cfg);
    Addr base = sys.heap().alloc(0, 64 * kBlockSize, 64);
    sys.onThread(0, [&](ThreadContext &tc) {
        // Back-to-back cold stores overwhelm a 2-entry buffer.
        for (unsigned i = 0; i < 32; ++i)
            tc.store64(base + i * kBlockSize, i);
    });
    sys.run();
    EXPECT_GT(sys.stats().lookup("core0", "sb_full_stalls"), 0u);
    EXPECT_GT(sys.stats().lookup("core0", "stall_ticks"), 0u);
}

TEST(Core, PartialOverlapLoadWaitsForSb)
{
    System sys(cfg1(PersistMode::Eadr));
    Addr a = sys.heap().alloc(0, 64, 64);
    std::uint64_t seen = 0;
    sys.onThread(0, [&](ThreadContext &tc) {
        tc.store32(a, 0x1111);     // 4-byte store
        seen = tc.load64(a);       // 8-byte load: no full forward
    });
    sys.run();
    EXPECT_EQ(seen, 0x1111u); // waited for retirement, then loaded
}

TEST(Core, TwoThreadsFinishIndependently)
{
    SystemConfig cfg = cfg1(PersistMode::Eadr);
    cfg.num_cores = 2;
    System sys(cfg);
    sys.onThread(0, [&](ThreadContext &tc) { tc.compute(10); });
    sys.onThread(1, [&](ThreadContext &tc) { tc.compute(10000); });
    sys.run();
    EXPECT_LT(sys.core(0).finishTick(), sys.core(1).finishTick());
    EXPECT_EQ(sys.executionTime(), sys.core(1).finishTick());
}

TEST(Core, RngIsPerThreadDeterministic)
{
    std::uint64_t first_run = 0, second_run = 0;
    for (std::uint64_t *out : {&first_run, &second_run}) {
        System sys(cfg1(PersistMode::Eadr));
        sys.onThread(0, [&](ThreadContext &tc) { *out = tc.rng().next(); });
        sys.run();
    }
    EXPECT_EQ(first_run, second_run);
}
