/**
 * @file
 * Unit tests for the declarative TSO/persistency model and the schedule
 * enumerator: golden interleaving counts, partial-order-reduction
 * soundness, determinism, and the durability-bound semantics.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "litmus/enumerate.hh"
#include "litmus/litmus.hh"
#include "litmus/model.hh"

using namespace bbb::litmus;

// gtest also defines a class named Test.
using LitTest = bbb::litmus::Test;

namespace
{

LitTest
parse(const std::string &text)
{
    LitTest t;
    std::string err;
    EXPECT_TRUE(parseTest(text, &t, &err)) << err;
    return t;
}

/** Enumerate and collect the final-register outcomes at leaves. */
std::set<std::string>
leafRegOutcomes(const Program &prog, unsigned nregs, bool por)
{
    std::set<std::string> out;
    EnumOptions opts;
    opts.por = por;
    EnumStats stats;
    bool done = enumerate(
        prog, opts, &stats,
        [&](const ModelState &m, const std::vector<Step> &, bool leaf) {
            if (!leaf)
                return true;
            std::string key;
            for (unsigned r = 0; r < nregs; ++r) {
                key += m.reg_done[r] ? std::to_string(m.regs[r]) : "-";
                key += ",";
            }
            out.insert(key);
            return true;
        });
    EXPECT_TRUE(done);
    EXPECT_FALSE(stats.aborted);
    return out;
}

} // namespace

// ---------------------------------------------------------------------
// Golden enumeration counts (hand-counted interleaving trees).
// ---------------------------------------------------------------------

TEST(LitmusEnum, GoldenCountsLoadsOnly2x2)
{
    // Two threads of two loads: no drains, per-thread order fixed.
    // Leaves = C(4,2) = 6; tree nodes = 1+2+4+6+6 = 19.
    LitTest t = parse("test t\nt0: ld x r0; ld x r1\n"
                   "t1: ld y r2; ld y r3\n");
    Program p = lower(t, Mode::Bbb);
    EnumOptions opts;
    opts.por = false;
    EnumStats stats;
    EXPECT_TRUE(enumerate(p, opts, &stats,
                          [](const ModelState &, const std::vector<Step> &,
                             bool) { return true; }));
    EXPECT_EQ(stats.leaves, 6u);
    EXPECT_EQ(stats.nodes, 19u);
    EXPECT_EQ(stats.pruned, 0u);
}

TEST(LitmusEnum, GoldenCountsLoadsOnly2x3)
{
    // Leaves = C(5,2) = 10.
    LitTest t = parse("test t\nt0: ld x r0; ld x r1\n"
                   "t1: ld y r2; ld y r3; ld y r4\n");
    Program p = lower(t, Mode::Bbb);
    EnumOptions opts;
    opts.por = false;
    EnumStats stats;
    EXPECT_TRUE(enumerate(p, opts, &stats,
                          [](const ModelState &, const std::vector<Step> &,
                             bool) { return true; }));
    EXPECT_EQ(stats.leaves, 10u);
}

TEST(LitmusEnum, GoldenCountsStoreDrainVsLoad)
{
    // t0: st (issue + forced drain), t1: one load. The drain is only
    // enabled after the issue, so the step sequences are fixed per
    // thread: leaves = C(3,1) = 3, nodes = 1+2+3+3 = 9.
    LitTest t = parse("test t\nt0: st x 1\nt1: ld x r0\n");
    Program p = lower(t, Mode::Bbb);
    EnumOptions opts;
    opts.por = false;
    EnumStats stats;
    EXPECT_TRUE(enumerate(p, opts, &stats,
                          [](const ModelState &, const std::vector<Step> &,
                             bool) { return true; }));
    EXPECT_EQ(stats.leaves, 3u);
    EXPECT_EQ(stats.nodes, 9u);
}

TEST(LitmusEnum, PorCollapsesIndependentPrograms)
{
    // Fully independent threads (disjoint variables, loads only): the
    // sleep sets must collapse the whole tree to a single leaf.
    LitTest t = parse("test t\nt0: ld x r0\nt1: ld y r1\n");
    Program p = lower(t, Mode::Bbb);
    EnumOptions opts;
    opts.por = true;
    EnumStats stats;
    EXPECT_TRUE(enumerate(p, opts, &stats,
                          [](const ModelState &, const std::vector<Step> &,
                             bool) { return true; }));
    EXPECT_EQ(stats.leaves, 1u);
    EXPECT_GT(stats.pruned, 0u);
}

TEST(LitmusEnum, PorPreservesTheOutcomeSet)
{
    // Sleep-set soundness on a conflict-heavy shape: the set of leaf
    // register outcomes must be identical with and without POR.
    LitTest t = parse("test t\nt0: st x 1; ld y r0\n"
                   "t1: st y 1; ld x r1\n");
    for (Mode m : {Mode::Bbb, Mode::PmemStrict}) {
        Program p = lower(t, m);
        EXPECT_EQ(leafRegOutcomes(p, 2, true),
                  leafRegOutcomes(p, 2, false))
            << "mode " << modeName(m);
    }
}

TEST(LitmusEnum, DeterministicAcrossRuns)
{
    LitTest t = parse("test t\nt0: st x 1; ld y r0\n"
                   "t1: st y 1; ld x r1\n");
    Program p = lower(t, Mode::Bbb);
    auto collect = [&]() {
        std::vector<std::string> seq;
        EnumOptions opts;
        EnumStats stats;
        enumerate(p, opts, &stats,
                  [&](const ModelState &, const std::vector<Step> &s,
                      bool leaf) {
                      seq.push_back(scheduleString(s) +
                                    (leaf ? " leaf" : ""));
                      return true;
                  });
        return seq;
    };
    std::vector<std::string> a = collect();
    std::vector<std::string> b = collect();
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b);
}

TEST(LitmusEnum, MaxNodesAborts)
{
    LitTest t = parse("test t\nt0: st x 1; st x 2\nt1: st x 3; st x 4\n");
    Program p = lower(t, Mode::Bbb);
    EnumOptions opts;
    opts.max_nodes = 3;
    EnumStats stats;
    EXPECT_FALSE(enumerate(p, opts, &stats,
                           [](const ModelState &,
                              const std::vector<Step> &,
                              bool) { return true; }));
    EXPECT_TRUE(stats.aborted);
    EXPECT_EQ(stats.nodes, 4u); // the abort fires on node max+1
}

// ---------------------------------------------------------------------
// Model semantics: TSO outcome sets.
// ---------------------------------------------------------------------

TEST(LitmusModel, SbAllowsAllFourOutcomes)
{
    LitTest t = parse("test t\nt0: st x 1; ld y r0\n"
                   "t1: st y 1; ld x r1\n");
    std::set<std::string> got =
        leafRegOutcomes(lower(t, Mode::Bbb), 2, false);
    std::set<std::string> want = {"0,0,", "0,1,", "1,0,", "1,1,"};
    EXPECT_EQ(got, want);
}

TEST(LitmusModel, MfenceForbidsTheSbRelaxation)
{
    LitTest t = parse("test t\nt0: st x 1; mfence; ld y r0\n"
                   "t1: st y 1; mfence; ld x r1\n");
    std::set<std::string> got =
        leafRegOutcomes(lower(t, Mode::Bbb), 2, false);
    EXPECT_EQ(got.count("0,0,"), 0u);
    EXPECT_EQ(got.count("1,1,"), 1u);
    EXPECT_EQ(got.count("0,1,"), 1u);
    EXPECT_EQ(got.count("1,0,"), 1u);
}

TEST(LitmusModel, MpForbidsStaleDataAfterFlag)
{
    LitTest t = parse("test t\nt0: st x 1; st y 1\n"
                   "t1: ld y r0; ld x r1\n");
    std::set<std::string> got =
        leafRegOutcomes(lower(t, Mode::Bbb), 2, false);
    // r0=1 (flag seen) with r1=0 (stale data) violates TSO: drains are
    // FIFO, so x retires before y.
    EXPECT_EQ(got.count("1,0,"), 0u);
    EXPECT_EQ(got.count("1,1,"), 1u);
    EXPECT_EQ(got.count("0,0,"), 1u);
}

TEST(LitmusModel, CoherenceReadsNeverGoBackwards)
{
    LitTest t = parse("test t\nt0: st x 1; st x 2\n"
                   "t1: ld x r0; ld x r1\n");
    std::set<std::string> got =
        leafRegOutcomes(lower(t, Mode::Bbb), 2, false);
    EXPECT_EQ(got.count("2,1,"), 0u);
    EXPECT_EQ(got.count("1,0,"), 0u);
    EXPECT_EQ(got.count("2,0,"), 0u);
    EXPECT_EQ(got.count("1,2,"), 1u);
    EXPECT_EQ(got.count("2,2,"), 1u);
}

TEST(LitmusModel, ForwardingReadsOwnBufferedStore)
{
    LitTest t = parse("test t\nt0: st x 1; ld x r0\n");
    Program p = lower(t, Mode::Bbb);
    ModelState m = ModelState::initial(1);
    ASSERT_TRUE(m.enabled(p, Step{0, false}));
    m.apply(p, Step{0, false}); // st -> buffer
    ASSERT_TRUE(m.enabled(p, Step{0, false}));
    m.apply(p, Step{0, false}); // ld forwards
    EXPECT_TRUE(m.reg_done[0]);
    EXPECT_EQ(m.regs[0], 1u);
    EXPECT_EQ(m.mem[0], 0u); // still volatile
}

// ---------------------------------------------------------------------
// Model semantics: durability bounds (Px86) and strict images.
// ---------------------------------------------------------------------

TEST(LitmusModel, DurminAdvancesOnFlushFencePairs)
{
    LitTest t = parse("test t\nmodes pmem\nt0: st x 1; flush x; sfence\n");
    Program p = lower(t, Mode::Pmem);
    ModelState m = ModelState::initial(1);

    m.apply(p, Step{0, false}); // st into the buffer
    EXPECT_TRUE(m.imageValueAllowed(Mode::Pmem, 0, 0));
    EXPECT_FALSE(m.imageValueAllowed(Mode::Pmem, 0, 1));

    // The flush is gated on the buffer not holding x.
    EXPECT_FALSE(m.enabled(p, Step{0, false}));
    m.apply(p, Step{0, true}); // drain
    EXPECT_TRUE(m.imageValueAllowed(Mode::Pmem, 0, 0));
    EXPECT_TRUE(m.imageValueAllowed(Mode::Pmem, 0, 1));

    m.apply(p, Step{0, false}); // flush: captured, not yet confirmed
    EXPECT_TRUE(m.imageValueAllowed(Mode::Pmem, 0, 0));

    m.apply(p, Step{0, false}); // sfence: x=1 is now durable
    EXPECT_FALSE(m.imageValueAllowed(Mode::Pmem, 0, 0));
    EXPECT_TRUE(m.imageValueAllowed(Mode::Pmem, 0, 1));
}

TEST(LitmusModel, StrictImageIsExactlyMemory)
{
    LitTest t = parse("test t\nt0: st x 1; st x 2\n");
    Program p = lower(t, Mode::Bbb);
    ModelState m = ModelState::initial(1);
    m.apply(p, Step{0, false});
    m.apply(p, Step{0, false});
    m.apply(p, Step{0, true}); // retire x=1
    EXPECT_TRUE(m.imageValueAllowed(Mode::Bbb, 0, 1));
    EXPECT_FALSE(m.imageValueAllowed(Mode::Bbb, 0, 0));
    EXPECT_FALSE(m.imageValueAllowed(Mode::Bbb, 0, 2));
    m.apply(p, Step{0, true}); // retire x=2
    EXPECT_TRUE(m.imageValueAllowed(Mode::Bbb, 0, 2));
    EXPECT_FALSE(m.imageValueAllowed(Mode::Bbb, 0, 1));
}

TEST(LitmusModel, FenceRequiresAnEmptyBuffer)
{
    LitTest t = parse("test t\nt0: st x 1; mfence\n");
    Program p = lower(t, Mode::Bbb);
    ModelState m = ModelState::initial(1);
    m.apply(p, Step{0, false});
    EXPECT_FALSE(m.enabled(p, Step{0, false})); // fence blocked
    m.apply(p, Step{0, true});
    EXPECT_TRUE(m.enabled(p, Step{0, false}));
}

// ---------------------------------------------------------------------
// Schedule string round-trip.
// ---------------------------------------------------------------------

TEST(LitmusSchedule, StringRoundTrip)
{
    std::vector<Step> steps = {{0, false}, {0, true}, {1, false},
                               {3, true}};
    std::string text = scheduleString(steps);
    EXPECT_EQ(text, "0 0d 1 3d");
    std::vector<Step> back;
    std::string err;
    ASSERT_TRUE(parseSchedule(text, &back, &err)) << err;
    EXPECT_EQ(back, steps);
    EXPECT_EQ(scheduleString({}), "(empty)");
    EXPECT_FALSE(parseSchedule("9", &back, &err));
    EXPECT_FALSE(parseSchedule("0x", &back, &err));
}
