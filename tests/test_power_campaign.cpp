/**
 * @file
 * Tests for the power-trace crash scheduler and the power-trace lifetime
 * campaign: window carving (outages, brownouts, warnings, recharge
 * gating), graceful-degradation policy effects, degradation-not-
 * corruption classification, and charge-state determinism across worker
 * pool widths.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "energy/energy_model.hh"
#include "power/power_scheduler.hh"
#include "recover/lifetime.hh"

using namespace bbb;

namespace
{

/** The small campaign machine (mirrors examples/lifetime_campaign). */
SystemConfig
smallCfg()
{
    SystemConfig cfg;
    cfg.num_cores = 2;
    cfg.l1d.size_bytes = 4_KiB;
    cfg.llc.size_bytes = 16_KiB;
    cfg.dram.size_bytes = 64_MiB;
    cfg.nvmm.size_bytes = 64_MiB;
    cfg.bbpb.entries = 8;
    cfg.l1d.repl = ReplPolicy::Random;
    cfg.llc.repl = ReplPolicy::Random;
    return cfg;
}

LifetimeSpec
powerSpec()
{
    LifetimeSpec spec;
    spec.base = smallCfg();
    spec.workloads = {"hashmap"};
    spec.modes = {PersistMode::BbbMemSide, PersistMode::BbbProcSide};
    spec.params.ops_per_thread = 250;
    spec.params.initial_elements = 80;
    spec.rounds = 3;
    spec.lifetimes = 1;
    spec.campaign_seed = 5;
    spec.traces = {"brownout:cycles=2", "square:cycles=2"};
    spec.battery_caps = {2e-6, 50e-6};
    spec.policies = {DegradePolicy::None, DegradePolicy::DrainOldest};
    return spec;
}

} // namespace

// --- PowerScheduler window carving ----------------------------------

TEST(PowerScheduler, SquareTraceYieldsOneWindowPerOnSpan)
{
    PowerTrace trace = PowerTrace::parse("square:cycles=3");
    PowerScheduler sched(trace, BatterySpec::fromCapacityJ(50e-6));
    PowerWindow w;
    unsigned windows = 0;
    while (sched.nextWindow(&w)) {
        ++windows;
        EXPECT_EQ(w.runTicks(), nsToTicks(45000)) << "window " << windows;
        EXPECT_FALSE(w.brownout_outage);
        EXPECT_GT(w.charge_at_outage, 0.0);
    }
    EXPECT_EQ(windows, 3u);
    EXPECT_EQ(sched.stats().outages, 3u);
    // The trace ends inside the final off span, so the fourth window
    // attempt correctly reports starvation (no supply left to resume).
    EXPECT_TRUE(sched.stats().starved);
}

TEST(PowerScheduler, BrownoutRiddenThroughWithAmpleCharge)
{
    // brownout preset: 60 us full, 25 us at 0.35 (above uv 0.25, below
    // breakeven 0.4 => discharging), 10 us dead. A large battery rides
    // the dip; the outage only comes from the dead span.
    PowerTrace trace = PowerTrace::parse("brownout:cycles=1");
    PowerScheduler sched(trace, BatterySpec::fromCapacityJ(50e-6));
    PowerWindow w;
    ASSERT_TRUE(sched.nextWindow(&w));
    EXPECT_EQ(w.runTicks(), nsToTicks(85000));
    EXPECT_FALSE(w.brownout_outage);
    EXPECT_EQ(w.brownouts_survived, 1u);
    EXPECT_EQ(sched.stats().brownouts_survived, 1u);
}

TEST(PowerScheduler, TinyBatteryEmptiesMidBrownout)
{
    // Drop a pre-drained battery into a long brownout: it must empty
    // mid-dip (a zero-budget outage) after the warning fired.
    PowerTrace trace = PowerTrace::parse("seg:0-1000@1;1000-2000000@0.3");
    BatterySpec spec = BatterySpec::fromCapacityJ(1e-6);
    spec.initial_soc = 0.5;
    PowerScheduler sched(trace, spec);
    bool warned = false;
    sched.setWarningHook([&](Tick, double charge) {
        warned = true;
        EXPECT_GT(charge, 0.0);
        return 0.0;
    });
    PowerWindow w;
    ASSERT_TRUE(sched.nextWindow(&w));
    EXPECT_TRUE(w.brownout_outage);
    EXPECT_EQ(w.charge_at_outage, 0.0);
    EXPECT_TRUE(warned);
    EXPECT_TRUE(w.has_warning);
    EXPECT_LT(w.warning, w.outage);
    EXPECT_EQ(sched.stats().brownout_outages, 1u);
    EXPECT_EQ(sched.stats().warnings, 1u);
}

TEST(PowerScheduler, ResumeWaitsForRechargeAboveThreshold)
{
    // After the first outage the battery is drained near empty by
    // noteCrashSpend; the second on-span must first recharge to the
    // power-on threshold, shortening (delaying into) the run window.
    PowerTrace trace = PowerTrace::parse("square:cycles=2");
    PowerScheduler sched(trace, BatterySpec::fromCapacityJ(20e-6));
    PowerWindow w;
    ASSERT_TRUE(sched.nextWindow(&w));
    sched.noteCrashSpend(sched.chargeJ(), true, 1e-6); // drain it all
    EXPECT_EQ(sched.chargeJ(), 0.0);
    ASSERT_TRUE(sched.nextWindow(&w));
    EXPECT_EQ(sched.stats().resume_waits, 1u);
    EXPECT_GT(sched.stats().resume_wait_ticks, 0u);
    // min headroom records the exhaustion shortfall as negative.
    EXPECT_DOUBLE_EQ(sched.stats().min_headroom_j, -1e-6);
}

TEST(PowerScheduler, StarvesWhenTheTraceEndsWhileOff)
{
    PowerTrace trace = PowerTrace::parse("seg:0-40000@1");
    PowerScheduler sched(trace, BatterySpec::fromCapacityJ(20e-6));
    PowerWindow w;
    ASSERT_TRUE(sched.nextWindow(&w)); // runs to trace end
    sched.noteCrashSpend(sched.chargeJ(), false, 0.0);
    EXPECT_FALSE(sched.nextWindow(&w));
    EXPECT_TRUE(sched.stats().starved);
}

TEST(PowerScheduler, ThrottlePolicySlowsTheDischarge)
{
    // Same trace and battery; the throttled run must last longer after
    // the warning. At supply 0.3 the full load drains at a net
    // 0.3*1.0 - 0.4 = -0.1 W, but the throttled load 0.5 flips that to
    // +0.1 W: the throttled machine rides the brownout out to the end
    // of the trace instead of emptying mid-dip.
    const char *token = "seg:0-1000@1;1000-3000000@0.3";
    BatterySpec spec = BatterySpec::fromCapacityJ(2e-6);
    spec.initial_soc = 0.5;

    PowerScheduler plain(PowerTrace::parse(token), spec);
    PowerWindow pw;
    ASSERT_TRUE(plain.nextWindow(&pw));

    PowerScheduler throttled(PowerTrace::parse(token), spec);
    throttled.setPostWarningLoad(0.5);
    PowerWindow tw;
    ASSERT_TRUE(throttled.nextWindow(&tw));

    ASSERT_TRUE(pw.brownout_outage);
    EXPECT_FALSE(tw.brownout_outage); // throttle rescued the brownout
    EXPECT_TRUE(tw.has_warning);
    EXPECT_GT(tw.runTicks(), pw.runTicks());
}

TEST(PowerScheduler, WarningHookSpendIsDebited)
{
    const char *token = "seg:0-1000@1;1000-3000000@0.3";
    BatterySpec spec = BatterySpec::fromCapacityJ(2e-6);
    spec.initial_soc = 0.5;

    PowerScheduler plain(PowerTrace::parse(token), spec);
    PowerWindow pw;
    ASSERT_TRUE(plain.nextWindow(&pw));

    // A hook that spends energy (a proactive drain) hastens the outage.
    PowerScheduler spending(PowerTrace::parse(token), spec);
    spending.setWarningHook([](Tick, double) { return 0.2e-6; });
    PowerWindow sw;
    ASSERT_TRUE(spending.nextWindow(&sw));
    EXPECT_LT(sw.runTicks(), pw.runTicks());
    EXPECT_DOUBLE_EQ(spending.stats().energy_drain_j, 0.2e-6);
}

// --- Power-trace lifetime campaigns ---------------------------------

TEST(PowerCampaign, UndersizedBatteriesDegradeButNeverViolate)
{
    LifetimeSpec spec = powerSpec();
    LifetimeSummary summary = runLifetimeCampaign(spec, 0);

    EXPECT_EQ(summary.violations, 0u);
    EXPECT_TRUE(summary.allClassified());
    ASSERT_FALSE(summary.results.empty());

    bool any_degraded = false, any_clean = false;
    for (const LifetimeResult &r : summary.results) {
        EXPECT_TRUE(r.powered);
        EXPECT_NE(r.outcome, LifetimeOutcome::OracleViolation)
            << r.reproLine();
        if (r.plan.battery_cap_j <= 2e-6 &&
            r.outcome == LifetimeOutcome::DegradedRepaired)
            any_degraded = true;
        if (r.plan.battery_cap_j >= 50e-6 &&
            r.outcome == LifetimeOutcome::Clean)
            any_clean = true;
        for (const LifetimeRound &rr : r.round_log) {
            EXPECT_TRUE(rr.power_round);
            EXPECT_GE(rr.charge_at_outage, 0.0);
        }
    }
    // The sweep spans the interesting range: too small degrades, big
    // enough survives clean.
    EXPECT_TRUE(any_degraded);
    EXPECT_TRUE(any_clean);

    // The campaign metric tree carries the power aggregates.
    EXPECT_GT(summary.metrics.count("power.outages"), 0u);
    EXPECT_EQ(summary.metrics.count("power.lifetimes"),
              summary.results.size());
}

TEST(PowerCampaign, DrainOldestPolicyDrainsBeforeTheOutage)
{
    // A mid-sized battery that warns before failing: drain-oldest must
    // proactively move blocks out while none-policy lifetimes at the
    // same capacity sacrifice more at the crash.
    LifetimeSpec spec = powerSpec();
    spec.traces = {"seg:0-60000@1;60000-400000@0.3"};
    spec.battery_caps = {4e-6};
    spec.policies = {DegradePolicy::None, DegradePolicy::DrainOldest};
    LifetimeSummary summary = runLifetimeCampaign(spec, 0);

    EXPECT_EQ(summary.violations, 0u);
    std::uint64_t drained = 0;
    bool saw_warning = false;
    for (const LifetimeResult &r : summary.results) {
        for (const LifetimeRound &rr : r.round_log) {
            saw_warning = saw_warning || rr.had_warning;
            if (r.plan.policy == DegradePolicy::DrainOldest)
                drained += rr.proactive_blocks;
        }
    }
    EXPECT_TRUE(saw_warning);
    EXPECT_GT(drained, 0u);
    EXPECT_EQ(summary.metrics.count("power.proactive_drain_blocks"),
              drained);
}

TEST(PowerCampaign, RefuseDirtyAndThrottleStayClassified)
{
    LifetimeSpec spec = powerSpec();
    spec.modes = {PersistMode::BbbMemSide};
    spec.traces = {"brownout:cycles=2"};
    spec.battery_caps = {4e-6};
    spec.policies = {DegradePolicy::Throttle, DegradePolicy::RefuseDirty};
    LifetimeSummary summary = runLifetimeCampaign(spec, 0);
    EXPECT_EQ(summary.violations, 0u);
    EXPECT_TRUE(summary.allClassified());
}

TEST(PowerCampaign, SummaryBitIdenticalAtAnyJobsWidth)
{
    LifetimeSpec spec = powerSpec();
    LifetimeSummary a = runLifetimeCampaign(spec, 1);
    LifetimeSummary b = runLifetimeCampaign(spec, 8);
    EXPECT_EQ(a.metrics.toJson(), b.metrics.toJson());
    ASSERT_EQ(a.results.size(), b.results.size());
    for (std::size_t i = 0; i < a.results.size(); ++i) {
        EXPECT_EQ(a.results[i].reproLine(), b.results[i].reproLine());
        EXPECT_EQ(a.results[i].image_fingerprint,
                  b.results[i].image_fingerprint);
        EXPECT_EQ(a.results[i].power.min_headroom_j,
                  b.results[i].power.min_headroom_j);
    }
}

TEST(PowerCampaign, ReplayFromTheReproPlanIsExact)
{
    LifetimeSpec spec = powerSpec();
    spec.traces = {"outages:seed=3:cycles=3"};
    spec.battery_caps = {4e-6};
    spec.policies = {DegradePolicy::DrainOldest};
    spec.modes = {PersistMode::BbbMemSide};
    LifetimeSummary summary = runLifetimeCampaign(spec, 0);
    ASSERT_FALSE(summary.results.empty());
    const LifetimeResult &orig = summary.results[0];

    // Reassemble the sample exactly as the repro line's flags would.
    LifetimeSample sample;
    sample.cfg = spec.base;
    sample.cfg.mode = orig.mode;
    sample.workload = orig.workload;
    sample.params = spec.params;
    sample.plan = orig.plan;
    sample.seed = orig.seed;
    sample.rounds = orig.rounds;
    LifetimeResult replay = runLifetimeSample(sample);

    EXPECT_EQ(replay.outcome, orig.outcome);
    EXPECT_EQ(replay.image_fingerprint, orig.image_fingerprint);
    ASSERT_EQ(replay.round_log.size(), orig.round_log.size());
    for (std::size_t i = 0; i < replay.round_log.size(); ++i) {
        EXPECT_EQ(replay.round_log[i].crash_tick,
                  orig.round_log[i].crash_tick);
        EXPECT_EQ(replay.round_log[i].charge_at_outage,
                  orig.round_log[i].charge_at_outage);
    }
}
