/**
 * @file
 * Boundary checks for the workload thread-range API: invalid ranges must
 * fail loudly at install time, not corrupt a run.
 */

#include <gtest/gtest.h>

#include "api/system.hh"
#include "workloads/workload.hh"

using namespace bbb;

namespace
{

SystemConfig
cfg2()
{
    SystemConfig c;
    c.num_cores = 2;
    c.dram.size_bytes = 64_MiB;
    c.nvmm.size_bytes = 64_MiB;
    return c;
}

WorkloadParams
ranged(unsigned offset, unsigned count)
{
    WorkloadParams p;
    p.ops_per_thread = 10;
    p.initial_elements = 10;
    p.thread_offset = offset;
    p.thread_count = count;
    return p;
}

} // namespace

TEST(WorkloadRanges, ExactFullRangeWorks)
{
    System sys(cfg2());
    auto wl = makeWorkload("linkedlist", ranged(0, 2));
    wl->install(sys);
    sys.run();
    EXPECT_GT(sys.stats().lookup("core0", "ops"), 0u);
    EXPECT_GT(sys.stats().lookup("core1", "ops"), 0u);
}

TEST(WorkloadRanges, SingleTailCoreWorks)
{
    System sys(cfg2());
    auto wl = makeWorkload("linkedlist", ranged(1, 1));
    wl->install(sys);
    sys.run();
    EXPECT_EQ(sys.stats().lookup("core0", "ops"), 0u);
    EXPECT_GT(sys.stats().lookup("core1", "ops"), 0u);
}

TEST(WorkloadRangesDeath, OffsetBeyondCoresPanics)
{
    System sys(cfg2());
    auto wl = makeWorkload("linkedlist", ranged(3, 0));
    EXPECT_DEATH(wl->install(sys), "range");
}

TEST(WorkloadRangesDeath, CountOverflowingCoresPanics)
{
    System sys(cfg2());
    auto wl = makeWorkload("linkedlist", ranged(1, 2));
    EXPECT_DEATH(wl->install(sys), "range");
}

TEST(WorkloadRangesDeath, DoubleBindingACoreP)
{
    System sys(cfg2());
    auto a = makeWorkload("linkedlist", ranged(0, 1));
    auto b = makeWorkload("hashmap", ranged(0, 1));
    a->install(sys);
    EXPECT_DEATH(b->install(sys), "already has a thread");
}
