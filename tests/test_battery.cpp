/**
 * @file
 * Unit tests for the charge-state battery (src/power/battery.hh): the
 * capacitor energy window, the exact energy-as-state round-trip the
 * litmus battery sweep depends on, threshold semantics, and the
 * power-integration step.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "energy/energy_model.hh"
#include "power/battery.hh"

using namespace bbb;

TEST(BatterySpec, UsableEnergyIsTheCapacitorWindow)
{
    BatterySpec spec;
    spec.capacitance_f = 2e-6;
    spec.max_voltage_v = 5.0;
    spec.min_voltage_v = 1.0;
    // C/2 * (Vmax^2 - Vmin^2) = 1e-6 * 24.
    EXPECT_DOUBLE_EQ(spec.capacityJ(), 24e-6);
}

TEST(BatterySpec, FromCapacityRoundTripsTheCapacity)
{
    for (double j : {0.5e-6, 50e-6, 1e-3}) {
        BatterySpec spec = BatterySpec::fromCapacityJ(j);
        EXPECT_DOUBLE_EQ(spec.capacityJ(), j) << "capacity " << j;
    }
}

TEST(BatterySpec, NegativeCapacityMeansEffectivelyUnlimited)
{
    BatterySpec spec = BatterySpec::fromCapacityJ(-1.0);
    EXPECT_DOUBLE_EQ(spec.capacityJ(), 1.0);
    // Far beyond any drain: >1e6 paper-constant blocks.
    EnergyConstants con;
    double item_j = kBlockSize * (con.sram_access_j_per_byte +
                                  con.l1_to_nvmm_j_per_byte);
    EXPECT_GT(spec.capacityJ() / item_j, 1e6);
}

TEST(Battery, StoredEnergyRoundTripsExactly)
{
    // Energy IS the state variable: setStored must read back bit-equal,
    // so a Battery-derived crash budget equals the constant it replaces.
    Battery b(BatterySpec::fromCapacityJ(4e-6));
    const double stored[] = {0.7583296e-6, 1.5166592e-6, 3.9999999e-6};
    for (double j : stored) {
        b.setStored(j);
        EXPECT_EQ(b.energy_stored(), j) << "stored " << j;
    }
}

TEST(Battery, VoltageDerivesFromEnergy)
{
    BatterySpec spec;
    Battery b(spec);
    EXPECT_DOUBLE_EQ(b.voltage(), spec.max_voltage_v);
    b.setStored(0.0);
    EXPECT_DOUBLE_EQ(b.voltage(), spec.min_voltage_v);
    b.setStored(b.maximum_energy_stored() / 2.0);
    double mid = std::sqrt(spec.min_voltage_v * spec.min_voltage_v +
                           2.0 * b.energy_stored() / spec.capacitance_f);
    EXPECT_DOUBLE_EQ(b.voltage(), mid);
}

TEST(Battery, ThresholdsFollowTheSpecFractions)
{
    Battery b(BatterySpec::fromCapacityJ(100e-6));
    EXPECT_DOUBLE_EQ(b.warningThresholdJ(), 25e-6);
    EXPECT_DOUBLE_EQ(b.powerOnThresholdJ(), 50e-6);
    EXPECT_FALSE(b.warning());
    EXPECT_TRUE(b.canPowerOn());
    b.setStored(30e-6);
    EXPECT_FALSE(b.warning());
    EXPECT_FALSE(b.canPowerOn());
    b.setStored(25e-6);
    EXPECT_TRUE(b.warning());
    b.consume(30e-6); // clamped at empty
    EXPECT_TRUE(b.empty());
    EXPECT_EQ(b.energy_stored(), 0.0);
}

TEST(Battery, ConsumeHarvestClampToTheWindow)
{
    Battery b(BatterySpec::fromCapacityJ(10e-6));
    b.consume(3e-6);
    EXPECT_DOUBLE_EQ(b.energy_stored(), 7e-6);
    b.harvest(100e-6);
    EXPECT_DOUBLE_EQ(b.energy_stored(), 10e-6);
}

TEST(Battery, AdvanceIntegratesNetPower)
{
    BatterySpec spec = BatterySpec::fromCapacityJ(1.0);
    spec.initial_soc = 0.5;
    Battery b(spec);
    // Full supply, machine off: pure charging at charge_w.
    b.advance(0.1, 1.0, 0.0);
    EXPECT_DOUBLE_EQ(b.energy_stored(), 0.5 + 0.1 * spec.charge_w);
    // Dead supply, full load: pure draining at activity_w.
    double before = b.energy_stored();
    b.advance(0.25, 0.0, 1.0);
    EXPECT_DOUBLE_EQ(b.energy_stored(), before - 0.25 * spec.activity_w);
    // Brownout at the breakeven supply (activity_w / charge_w): flat.
    before = b.energy_stored();
    b.advance(0.5, spec.activity_w / spec.charge_w, 1.0);
    EXPECT_DOUBLE_EQ(b.energy_stored(), before);
}

TEST(Battery, DefaultBreakevenSupplyIsAboveUnderVoltage)
{
    // The stock brownout regime exists: there are supply levels the
    // machine runs at (>= uv_supply) where the battery still discharges
    // (< activity_w / charge_w).
    BatterySpec spec;
    EXPECT_LT(spec.uv_supply, spec.activity_w / spec.charge_w);
}
