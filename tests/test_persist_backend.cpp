/**
 * @file
 * Tests for the persistency-backend interface layer: the null backend's
 * contract (used by ADR/PMEM/eADR modes) and record plumbing.
 */

#include <gtest/gtest.h>

#include "core/persist_backend.hh"

using namespace bbb;

TEST(NullBackend, AcceptsEverythingHoldsNothing)
{
    NullPersistencyBackend backend;
    EXPECT_TRUE(backend.canAcceptPersist(0, 0));
    EXPECT_TRUE(backend.canAcceptPersist(63, 1_GiB));

    BlockData data;
    backend.persistStore(0, 4096, 8, data); // must be a harmless no-op
    EXPECT_FALSE(backend.holds(0, 4096));
    EXPECT_EQ(backend.occupancy(), 0u);
}

TEST(NullBackend, HooksAreNoops)
{
    NullPersistencyBackend backend;
    BlockData data;
    backend.onInvalidateForWrite(0, 64);
    backend.onForcedDrain(64, data);
    EXPECT_FALSE(backend.skipLlcWriteback(64)); // normal writebacks
    EXPECT_TRUE(backend.crashDrainRecords().empty());
}

TEST(PersistRecord, CarriesBlockAndData)
{
    BlockData data;
    data.bytes.fill(0x5a);
    PersistRecord rec{128, data};
    EXPECT_EQ(rec.block, 128u);
    EXPECT_EQ(rec.data.bytes[63], 0x5a);
}

TEST(BlockData, CopyHelpers)
{
    unsigned char raw[kBlockSize];
    for (unsigned i = 0; i < kBlockSize; ++i)
        raw[i] = static_cast<unsigned char>(i * 3);
    BlockData d;
    d.copyFrom(raw);
    unsigned char out[kBlockSize] = {};
    d.copyTo(out);
    EXPECT_EQ(std::memcmp(raw, out, kBlockSize), 0);
}
