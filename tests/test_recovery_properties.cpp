/**
 * @file
 * Property-based crash-consistency tests: the paper's central claims,
 * checked over sweeps of crash points, workloads, and modes.
 *
 *  P1. Under BBB (either organisation), eADR, and correctly annotated
 *      PMEM, the persistent image is consistent at *every* crash point.
 *  P2. Under BBB, the set of persisted nodes per thread is a *prefix* of
 *      that thread's insertion order: persist order == program order
 *      (strict persistency).
 *  P3. Persisted state only grows: crashing later never recovers fewer
 *      nodes (same seed, same schedule).
 *  P4. BBB recovers at least as much as ADR/PMEM at the same crash point
 *      (its PoP is earlier in the pipeline).
 */

#include <gtest/gtest.h>

#include "api/system.hh"
#include "workloads/linkedlist.hh"
#include "workloads/workload.hh"

using namespace bbb;

namespace
{

SystemConfig
cfg(PersistMode mode)
{
    SystemConfig c;
    c.num_cores = 2;
    c.l1d.size_bytes = 8_KiB;
    c.llc.size_bytes = 32_KiB;
    c.dram.size_bytes = 64_MiB;
    c.nvmm.size_bytes = 64_MiB;
    c.mode = mode;
    return c;
}

struct CrashOutcome
{
    RecoveryResult recovery;
    std::uint64_t prefix_len[2]; // per-thread persisted prefix length
};

/**
 * Run the linked-list workload, crash at @p tick, and measure both
 * consistency and the per-thread persisted prefix. Keys are sequential
 * per thread (tid in the high bits), so the prefix property is checkable:
 * walking from the head, keys must descend contiguously.
 */
CrashOutcome
crashList(PersistMode mode, Tick tick, std::uint64_t ops)
{
    System sys(cfg(mode));
    // Sequential keys: thread t inserts (t<<32)|1, (t<<32)|2, ...
    std::uint64_t counter[2] = {0, 0};
    for (CoreId t = 0; t < 2; ++t) {
        sys.onThread(t, [&sys, &counter, t, ops](ThreadContext &tc) {
            TcAccessor m(tc);
            Addr root = sys.heap().rootAddr(t);
            for (std::uint64_t i = 1; i <= ops; ++i) {
                LinkedListWorkload::appendNode(
                    m, sys.heap(), t, root,
                    (static_cast<std::uint64_t>(t) << 32) | i);
                counter[t] = i;
            }
        });
    }
    sys.runAndCrashAt(tick);

    CrashOutcome out{};
    PmemImage img = sys.pmemImage();
    for (unsigned t = 0; t < 2; ++t) {
        Addr node = img.read64(sys.heap().rootAddr(t));
        std::uint64_t expected = 0;
        bool first = true;
        while (node != 0) {
            if (!img.validPersistent(node)) {
                ++out.recovery.dangling;
                break;
            }
            std::uint64_t key = img.read64(node);
            std::uint64_t sum = img.read64(node + 8);
            ++out.recovery.checked;
            if (sum != nodeChecksum(key)) {
                ++out.recovery.torn;
                break;
            }
            ++out.recovery.intact;
            if (first) {
                out.prefix_len[t] = key & 0xffffffff;
                expected = key;
                first = false;
            } else {
                //

                // Strict prefix: each node's key is its successor's + 1.
                if (key + 1 != expected) {
                    ++out.recovery.torn; // order violation counts as torn
                    break;
                }
                expected = key;
            }
            node = img.read64(node + 16);
        }
    }
    return out;
}

} // namespace

class CrashPointSweep
    : public ::testing::TestWithParam<std::tuple<PersistMode, int>>
{
};

TEST_P(CrashPointSweep, ConsistentAndPrefixOrdered)
{
    auto [mode, point] = GetParam();
    Tick tick = nsToTicks(3000ull * point * point + 500);
    CrashOutcome out = crashList(mode, tick, 3000);
    EXPECT_EQ(out.recovery.torn, 0u)
        << persistModeName(mode) << " @" << tick;
    EXPECT_EQ(out.recovery.dangling, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    SafeModes, CrashPointSweep,
    ::testing::Combine(::testing::Values(PersistMode::AdrPmem,
                                         PersistMode::Eadr,
                                         PersistMode::BbbMemSide,
                                         PersistMode::BbbProcSide),
                       ::testing::Range(1, 9)),
    [](const auto &param_info) {
        std::string name = persistModeName(std::get<0>(param_info.param));
        for (auto &ch : name) {
            if (ch == '-')
                ch = '_';
        }
        return name + "_p" + std::to_string(std::get<1>(param_info.param));
    });

TEST(CrashProperties, PersistedStateGrowsMonotonically)
{
    std::uint64_t prev = 0;
    for (int i = 1; i <= 6; ++i) {
        CrashOutcome out = crashList(PersistMode::BbbMemSide,
                                     nsToTicks(10000ull * i), 2000);
        std::uint64_t total = out.prefix_len[0] + out.prefix_len[1];
        EXPECT_GE(total, prev) << "crash point " << i;
        prev = total;
    }
    EXPECT_GT(prev, 0u);
}

TEST(CrashProperties, BbbPersistsAtLeastAsMuchAsPmem)
{
    for (int i = 2; i <= 6; i += 2) {
        Tick tick = nsToTicks(15000ull * i);
        CrashOutcome bbb = crashList(PersistMode::BbbMemSide, tick, 2000);
        CrashOutcome pmem = crashList(PersistMode::AdrPmem, tick, 2000);
        EXPECT_GE(bbb.prefix_len[0] + bbb.prefix_len[1],
                  pmem.prefix_len[0] + pmem.prefix_len[1])
            << "crash at " << tick;
    }
}

TEST(CrashProperties, EadrAndBbbRecoverEquivalently)
{
    // The paper's headline: BBB == eADR for recoverability.
    for (int i = 1; i <= 4; ++i) {
        Tick tick = nsToTicks(20000ull * i);
        CrashOutcome bbb = crashList(PersistMode::BbbMemSide, tick, 2000);
        CrashOutcome eadr = crashList(PersistMode::Eadr, tick, 2000);
        EXPECT_EQ(bbb.recovery.torn, 0u);
        EXPECT_EQ(eadr.recovery.torn, 0u);
        // Recovered amounts are close (identical timing up to drain
        // noise: both persist at commit).
        std::int64_t diff =
            std::int64_t(bbb.prefix_len[0] + bbb.prefix_len[1]) -
            std::int64_t(eadr.prefix_len[0] + eadr.prefix_len[1]);
        EXPECT_LT(std::abs(diff), 200) << "crash at " << tick;
    }
}

TEST(CrashProperties, PostCrashImageMatchesArchitecturalPrefix)
{
    // Coalescing must never lose bytes: after a full run + crash, the
    // NVMM image of every reachable node equals the architecturally
    // stored value (checked by the checksum walk over ALL modes' safe
    // configurations with random replacement to vary eviction order).
    for (PersistMode mode :
         {PersistMode::Eadr, PersistMode::BbbMemSide,
          PersistMode::BbbProcSide}) {
        SystemConfig c = cfg(mode);
        c.l1d.repl = ReplPolicy::Random;
        c.llc.repl = ReplPolicy::Random;
        System sys(c);
        WorkloadParams p;
        p.ops_per_thread = 500;
        p.initial_elements = 100;
        auto wl = makeWorkload("hashmap", p);
        wl->install(sys);
        sys.run();
        sys.crashNow();
        RecoveryResult res = wl->checkRecovery(sys.pmemImage());
        EXPECT_TRUE(res.consistent()) << persistModeName(mode);
        EXPECT_EQ(res.checked, 2 * 600u) << persistModeName(mode);
    }
}
