/**
 * @file
 * Unit and fuzz tests for the power-trace parser
 * (src/power/power_trace.hh): preset construction, the inline `seg:`
 * and multi-line text forms, and — the robustness contract — rejection
 * of malformed traces with positioned diagnostics instead of crashes or
 * silently-accepted garbage.
 */

#include <gtest/gtest.h>

#include <string>

#include "power/power_trace.hh"
#include "sim/rng.hh"

using namespace bbb;

namespace
{

std::string
rejects(const std::string &token)
{
    PowerTrace t;
    std::string err;
    EXPECT_FALSE(PowerTrace::tryParse(token, &t, &err))
        << "token '" << token << "' unexpectedly parsed";
    EXPECT_FALSE(err.empty()) << "token '" << token << "'";
    return err;
}

} // namespace

TEST(PowerTrace, PresetsAllParse)
{
    for (const std::string &name : powerTracePresetNames()) {
        PowerTrace t;
        std::string err;
        ASSERT_TRUE(PowerTrace::tryParse(name, &t, &err))
            << name << ": " << err;
        EXPECT_FALSE(t.empty()) << name;
        EXPECT_EQ(t.token(), name);
        EXPECT_GT(t.endTick(), 0u) << name;
    }
}

TEST(PowerTrace, PresetParametersShapeTheTrace)
{
    PowerTrace one = PowerTrace::parse("square:cycles=1");
    PowerTrace three = PowerTrace::parse("square:cycles=3");
    EXPECT_EQ(one.segments().size(), 2u);
    EXPECT_EQ(three.segments().size(), 6u);
    EXPECT_EQ(three.endTick(), 3 * one.endTick());

    PowerTrace steady = PowerTrace::parse("steady:us=100");
    ASSERT_EQ(steady.segments().size(), 1u);
    EXPECT_EQ(steady.endTick(), nsToTicks(100000));
    EXPECT_DOUBLE_EQ(steady.segments()[0].level, 1.0);
}

TEST(PowerTrace, SeededOutagesPresetIsDeterministic)
{
    PowerTrace a = PowerTrace::parse("outages:seed=7:cycles=4");
    PowerTrace b = PowerTrace::parse("outages:seed=7:cycles=4");
    PowerTrace c = PowerTrace::parse("outages:seed=8:cycles=4");
    ASSERT_EQ(a.segments().size(), b.segments().size());
    for (std::size_t i = 0; i < a.segments().size(); ++i) {
        EXPECT_EQ(a.segments()[i].begin, b.segments()[i].begin);
        EXPECT_EQ(a.segments()[i].end, b.segments()[i].end);
        EXPECT_EQ(a.segments()[i].level, b.segments()[i].level);
    }
    EXPECT_NE(c.endTick(), a.endTick());
}

TEST(PowerTrace, InlineSegmentsAndGaps)
{
    PowerTrace t = PowerTrace::parse("seg:0-60000@1;70000-80000@0.3;");
    ASSERT_EQ(t.segments().size(), 2u);
    EXPECT_DOUBLE_EQ(t.levelAt(nsToTicks(100)), 1.0);
    EXPECT_DOUBLE_EQ(t.levelAt(nsToTicks(65000)), 0.0); // gap
    EXPECT_DOUBLE_EQ(t.levelAt(nsToTicks(75000)), 0.3);
    EXPECT_DOUBLE_EQ(t.levelAt(nsToTicks(90000)), 0.0); // past the end
}

TEST(PowerTrace, RejectsEmptyAndCommaTokens)
{
    EXPECT_NE(rejects("").find("empty trace token"), std::string::npos);
    // The token rides inside FaultPlan's comma-separated form.
    EXPECT_NE(rejects("seg:0-10@1,20-30@0").find("','"),
              std::string::npos);
    EXPECT_NE(rejects("seg:").find("empty trace"), std::string::npos);
}

TEST(PowerTrace, RejectsZeroLengthSegments)
{
    std::string err = rejects("seg:0-0@1");
    EXPECT_NE(err.find("segment 1"), std::string::npos) << err;
    EXPECT_NE(err.find("zero-length"), std::string::npos) << err;
}

TEST(PowerTrace, RejectsNonMonotoneTicks)
{
    std::string err = rejects("seg:0-50000@1;40000-60000@0.5");
    EXPECT_NE(err.find("segment 2"), std::string::npos) << err;
    EXPECT_NE(err.find("non-monotone"), std::string::npos) << err;
}

TEST(PowerTrace, RejectsOutOfRangeLevels)
{
    std::string err = rejects("seg:0-1000@1.5");
    EXPECT_NE(err.find("outside [0, 1]"), std::string::npos) << err;
    err = rejects("seg:0-1000@-0.25");
    EXPECT_NE(err.find("outside [0, 1]"), std::string::npos) << err;
}

TEST(PowerTrace, RejectsUnknownPresetsAndParameters)
{
    EXPECT_NE(rejects("sinusoid").find("unknown power-trace preset"),
              std::string::npos);
    EXPECT_NE(rejects("square:cycels=3").find("unknown trace parameter"),
              std::string::npos);
    EXPECT_NE(rejects("square:cycles=abc").find("malformed trace "
                                                "parameter"),
              std::string::npos);
    EXPECT_NE(rejects("seg:12@1").find("want BEGIN_NS-END_NS@LEVEL"),
              std::string::npos);
}

TEST(PowerTrace, TextFormParsesWithCommentsAndReplayToken)
{
    PowerTrace t;
    std::string err;
    ASSERT_TRUE(PowerTrace::tryParseText("# warm then dip\n"
                                         "0 60000 1.0\n"
                                         "\n"
                                         "60000 70000 0.3 # brownout\n",
                                         &t, &err))
        << err;
    ASSERT_EQ(t.segments().size(), 2u);
    // The canonical token replays the identical trace from one CLI flag.
    PowerTrace replay = PowerTrace::parse(t.token());
    ASSERT_EQ(replay.segments().size(), 2u);
    EXPECT_EQ(replay.segments()[1].begin, t.segments()[1].begin);
    EXPECT_EQ(replay.segments()[1].end, t.segments()[1].end);
    EXPECT_DOUBLE_EQ(replay.segments()[1].level, 0.3);
}

TEST(PowerTrace, TextFormDiagnosticsCarryLineNumbers)
{
    PowerTrace t;
    std::string err;
    EXPECT_FALSE(PowerTrace::tryParseText(
        "0 1000 1.0\n# fine so far\n1000 2000\n", &t, &err));
    EXPECT_NE(err.find("line 3"), std::string::npos) << err;

    EXPECT_FALSE(PowerTrace::tryParseText(
        "0 1000 1.0\n500 2000 0.5\n", &t, &err));
    EXPECT_NE(err.find("line 2"), std::string::npos) << err;
    EXPECT_NE(err.find("non-monotone"), std::string::npos) << err;

    EXPECT_FALSE(PowerTrace::tryParseText("# only comments\n\n", &t, &err));
    EXPECT_NE(err.find("empty trace"), std::string::npos) << err;
}

TEST(PowerTrace, FuzzedTokensNeverCrashAndErrorsAreFilled)
{
    // Random garbage from the token alphabet: every outcome must be a
    // clean accept or a diagnosed reject — no crashes, no empty errors.
    const std::string alphabet = "seg:0123456789-@;.=abcxyz_ ";
    Rng rng(0xf022ull);
    unsigned accepted = 0;
    for (unsigned i = 0; i < 2000; ++i) {
        std::string token;
        unsigned len = 1 + static_cast<unsigned>(rng.below(24));
        for (unsigned c = 0; c < len; ++c)
            token += alphabet[static_cast<std::size_t>(
                rng.below(alphabet.size()))];
        PowerTrace t;
        std::string err;
        if (PowerTrace::tryParse(token, &t, &err)) {
            ++accepted;
            EXPECT_FALSE(t.empty());
        } else {
            EXPECT_FALSE(err.empty()) << "token '" << token << "'";
        }
    }
    // The alphabet is token-shaped garbage; almost everything rejects.
    EXPECT_LT(accepted, 200u);
}
