/**
 * @file
 * Unit tests for the set-associative array and replacement policies,
 * including parameterized sweeps over every policy.
 */

#include <gtest/gtest.h>

#include <set>

#include "cache/cache_array.hh"
#include "cache/hierarchy.hh"

using namespace bbb;

namespace
{

struct Line : CacheLineBase
{
    int payload = 0;
};

/** Address of way-conflicting blocks for a given set in a 4-way array. */
Addr
conflicting(const CacheArray<Line> &array, unsigned i)
{
    return static_cast<Addr>(i) * array.numSets() * kBlockSize;
}

} // namespace

TEST(CacheArray, GeometryFromSizeAndAssoc)
{
    CacheArray<Line> a(128_KiB, 8);
    EXPECT_EQ(a.numLines(), 2048u);
    EXPECT_EQ(a.numSets(), 256u);
    EXPECT_EQ(a.assoc(), 8u);
}

TEST(CacheArray, FindMissesOnEmpty)
{
    CacheArray<Line> a(4_KiB, 4);
    EXPECT_EQ(a.find(0), nullptr);
}

TEST(CacheArray, FillThenFind)
{
    CacheArray<Line> a(4_KiB, 4);
    Line &v = a.victim(640);
    a.fill(v, 640);
    v.payload = 5;
    Line *found = a.find(640);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->payload, 5);
    EXPECT_EQ(found->block, 640u);
    // Unaligned lookups resolve to the block.
    EXPECT_EQ(a.find(645), found);
}

TEST(CacheArray, InvalidWaysPreferredAsVictims)
{
    CacheArray<Line> a(4_KiB, 4);
    for (unsigned i = 0; i < 4; ++i) {
        Line &v = a.victim(conflicting(a, i));
        EXPECT_FALSE(v.valid);
        a.fill(v, conflicting(a, i));
    }
    // Set now full: next victim must be a valid line.
    Line &v = a.victim(conflicting(a, 4));
    EXPECT_TRUE(v.valid);
}

TEST(CacheArray, LruEvictsLeastRecentlyTouched)
{
    CacheArray<Line> a(4_KiB, 4, ReplPolicy::Lru);
    for (unsigned i = 0; i < 4; ++i)
        a.fill(a.victim(conflicting(a, i)), conflicting(a, i));
    // Touch 0, 2, 3: block 1 becomes LRU.
    a.touch(*a.find(conflicting(a, 0)));
    a.touch(*a.find(conflicting(a, 2)));
    a.touch(*a.find(conflicting(a, 3)));
    EXPECT_EQ(a.victim(conflicting(a, 4)).block, conflicting(a, 1));
}

TEST(CacheArray, FifoIgnoresTouches)
{
    CacheArray<Line> a(4_KiB, 4, ReplPolicy::Fifo);
    for (unsigned i = 0; i < 4; ++i)
        a.fill(a.victim(conflicting(a, i)), conflicting(a, i));
    // Touch the oldest heavily: FIFO still evicts it.
    for (int i = 0; i < 10; ++i)
        a.touch(*a.find(conflicting(a, 0)));
    EXPECT_EQ(a.victim(conflicting(a, 4)).block, conflicting(a, 0));
}

TEST(CacheArray, InvalidateFreesLine)
{
    CacheArray<Line> a(4_KiB, 4);
    Line &v = a.victim(0);
    a.fill(v, 0);
    a.invalidate(v);
    EXPECT_EQ(a.find(0), nullptr);
    EXPECT_FALSE(v.valid);
}

TEST(CacheArray, ForEachValidVisitsExactlyValidLines)
{
    CacheArray<Line> a(4_KiB, 4);
    a.fill(a.victim(0), 0);
    a.fill(a.victim(kBlockSize), kBlockSize);
    std::set<Addr> seen;
    a.forEachValid([&](Line &l) { seen.insert(l.block); });
    EXPECT_EQ(seen, (std::set<Addr>{0, kBlockSize}));
}

TEST(CacheArray, VictimWhereProtectsIneligible)
{
    CacheArray<Line> a(4_KiB, 4, ReplPolicy::Lru);
    for (unsigned i = 0; i < 4; ++i)
        a.fill(a.victim(conflicting(a, i)), conflicting(a, i));
    // Protect the LRU line (block 0); the next-oldest is chosen.
    Line &v = a.victimWhere(conflicting(a, 4), [&](const Line &l) {
        return l.block != conflicting(a, 0);
    });
    EXPECT_EQ(v.block, conflicting(a, 1));
}

TEST(CacheArray, VictimWhereCapsProtectionAtHalfTheWays)
{
    CacheArray<Line> a(4_KiB, 4, ReplPolicy::Lru);
    for (unsigned i = 0; i < 4; ++i)
        a.fill(a.victim(conflicting(a, i)), conflicting(a, i));
    // Protecting 3 of 4 ways exceeds the cap: plain LRU wins.
    Line &v = a.victimWhere(conflicting(a, 4), [&](const Line &l) {
        return l.block == conflicting(a, 3);
    });
    EXPECT_EQ(v.block, conflicting(a, 0));
}

TEST(CacheArray, VictimWhereFallsBackWhenNoneEligible)
{
    CacheArray<Line> a(4_KiB, 4, ReplPolicy::Lru);
    for (unsigned i = 0; i < 4; ++i)
        a.fill(a.victim(conflicting(a, i)), conflicting(a, i));
    Line &v =
        a.victimWhere(conflicting(a, 4), [](const Line &) { return false; });
    EXPECT_EQ(v.block, conflicting(a, 0)); // unrestricted LRU choice
}

// ---------------------------------------------------------------------
// Parameterized over all replacement policies.
// ---------------------------------------------------------------------

class CacheArrayPolicy : public ::testing::TestWithParam<ReplPolicy>
{
};

TEST_P(CacheArrayPolicy, FullSetAlwaysYieldsValidVictim)
{
    CacheArray<Line> a(4_KiB, 4, GetParam());
    for (unsigned i = 0; i < 4; ++i)
        a.fill(a.victim(conflicting(a, i)), conflicting(a, i));
    for (unsigned round = 0; round < 20; ++round) {
        Line &v = a.victim(conflicting(a, 4 + round));
        EXPECT_TRUE(v.valid);
        a.fill(v, conflicting(a, 4 + round));
    }
}

TEST_P(CacheArrayPolicy, FindNeverReturnsWrongBlock)
{
    CacheArray<Line> a(8_KiB, 4, GetParam());
    Rng rng(3);
    std::set<Addr> resident;
    for (int i = 0; i < 2000; ++i) {
        Addr block = blockAlign(rng.below(64) * kBlockSize);
        Line *found = a.find(block);
        if (found) {
            EXPECT_EQ(found->block, block);
        } else {
            Line &v = a.victim(block);
            if (v.valid)
                resident.erase(v.block);
            a.fill(v, block);
            resident.insert(block);
        }
    }
    // Every resident block is findable.
    for (Addr b : resident)
        EXPECT_NE(a.find(b), nullptr);
}

TEST_P(CacheArrayPolicy, CapacityNeverExceeded)
{
    CacheArray<Line> a(4_KiB, 4, GetParam());
    Rng rng(5);
    for (int i = 0; i < 500; ++i) {
        Addr block = blockAlign(rng.below(1024) * kBlockSize);
        if (!a.find(block)) {
            Line &v = a.victim(block);
            a.fill(v, block);
        }
        std::size_t valid = 0;
        a.forEachValid([&](Line &) { ++valid; });
        EXPECT_LE(valid, a.numLines());
    }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, CacheArrayPolicy,
                         ::testing::Values(ReplPolicy::Lru,
                                           ReplPolicy::Fifo,
                                           ReplPolicy::Random),
                         [](const auto &param_info) {
                             return replPolicyName(param_info.param);
                         });
