/**
 * @file
 * Channel interleaving tests for the media address map: the block-granular
 * round-robin contract of mediaChannelOf() across 1/2/4/8 channels, the
 * MemCtrl timing consequences (distinct channels overlap, same channel
 * serialises) at every width, and the FtlMedia invariant that remapping —
 * including wear-leveling migration — never moves a block's traffic to
 * another channel, so the interleave balance the memory controller times
 * against stays true under the FTL.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/backing_store.hh"
#include "mem/ftl/ftl_media.hh"
#include "mem/mem_ctrl.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

using namespace bbb;

namespace
{

constexpr unsigned kWidths[] = {1, 2, 4, 8};

BlockData
pattern(unsigned char v)
{
    BlockData d;
    d.bytes.fill(v);
    return d;
}

Addr
blk(unsigned i)
{
    return static_cast<Addr>(i) * kBlockSize;
}

MemConfig
timedCfg(unsigned channels)
{
    MemConfig cfg;
    cfg.read_latency = nsToTicks(150);
    cfg.write_latency = nsToTicks(500);
    cfg.read_occupancy = nsToTicks(10);
    cfg.write_occupancy = nsToTicks(28);
    cfg.channels = channels;
    cfg.wpq_entries = 16;
    return cfg;
}

} // namespace

TEST(ChannelInterleave, AddressMapRoundRobinsBlocksAcrossChannels)
{
    for (unsigned ch : kWidths) {
        std::vector<unsigned> counts(ch, 0);
        for (unsigned i = 0; i < 64; ++i) {
            EXPECT_EQ(mediaChannelOf(blk(i), ch), i % ch)
                << "block " << i << " on " << ch << " channels";
            // Sub-block addresses belong to their block's channel.
            EXPECT_EQ(mediaChannelOf(blk(i) + 17, ch), i % ch);
            EXPECT_EQ(mediaChannelOf(blk(i) + kBlockSize - 1, ch), i % ch);
            ++counts[mediaChannelOf(blk(i), ch)];
        }
        // A block-strided sweep loads every channel equally.
        for (unsigned c = 0; c < ch; ++c)
            EXPECT_EQ(counts[c], 64 / ch) << "channel " << c;
    }
}

TEST(ChannelInterleave, ConsecutiveBlocksOverlapAtEveryWidth)
{
    // One write per channel (blocks 0..channels-1): all retirements run
    // in parallel, so the whole burst takes one write latency.
    for (unsigned ch : kWidths) {
        EventQueue eq;
        BackingStore store;
        DirectMedia media(store);
        StatRegistry stats;
        MemCtrl mc("nvmm", timedCfg(ch), eq, media, stats);
        for (unsigned i = 0; i < ch; ++i)
            ASSERT_TRUE(mc.enqueueWrite(blk(i), pattern(1)));
        eq.run();
        EXPECT_EQ(eq.now(), nsToTicks(500)) << ch << " channels";
        EXPECT_EQ(mc.mediaWrites(), ch);
    }
}

TEST(ChannelInterleave, ChannelStridedBlocksSerialiseAtEveryWidth)
{
    // Blocks 0 and `channels` collide on channel 0: the second write
    // queues behind one occupancy slot.
    for (unsigned ch : kWidths) {
        EventQueue eq;
        BackingStore store;
        DirectMedia media(store);
        StatRegistry stats;
        MemCtrl mc("nvmm", timedCfg(ch), eq, media, stats);
        ASSERT_TRUE(mc.enqueueWrite(blk(0), pattern(1)));
        ASSERT_TRUE(mc.enqueueWrite(blk(ch), pattern(2)));
        eq.run();
        EXPECT_EQ(eq.now(), nsToTicks(28) + nsToTicks(500))
            << ch << " channels";
    }
}

TEST(ChannelInterleave, FtlRemapNeverMovesABlockOffItsChannel)
{
    // Free frames are minted and pooled per channel, so however many
    // times a block is rewritten or migrated, its frame stays on
    // mediaChannelOf(block): the controller's interleave timing remains
    // truthful under the FTL.
    // 13 blocks per channel: free-frame minting is batched (8 per
    // channel), so this leaves 3 free frames per channel for the
    // wear-leveler to compare against — an exact batch multiple would
    // run the free pools dry and never migrate.
    constexpr unsigned kChannels = 4;
    constexpr unsigned kBlocks = 52;
    BackingStore store;
    MediaModelConfig cfg;
    cfg.kind = MediaKind::Ftl;
    cfg.endurance_cycles = 1000;
    cfg.wear_delta = 2;
    cfg.wl_interval = 1;
    FtlMedia media(store, cfg, kChannels);

    // One cold write per block, then hammer one hot block per channel so
    // static wear-leveling migrates cold blocks on every channel.
    for (unsigned i = 0; i < kBlocks; ++i)
        media.commitBlock(blk(i), pattern(static_cast<unsigned char>(i)));
    for (unsigned round = 0; round < 30; ++round)
        for (unsigned hot = 0; hot < kChannels; ++hot)
            media.commitBlock(blk(hot),
                              pattern(static_cast<unsigned char>(round)));
    EXPECT_GT(media.stats().migrations.value(), 0u);

    std::vector<unsigned> mapped_per_channel(kChannels, 0);
    for (unsigned i = 0; i < kBlocks; ++i) {
        std::uint64_t frame = media.frameOf(blk(i));
        ASSERT_NE(frame, FtlMedia::kNoFrame) << "block " << i;
        EXPECT_EQ(frame % kChannels, mediaChannelOf(blk(i), kChannels))
            << "block " << i << " migrated off its channel";
        ++mapped_per_channel[frame % kChannels];
    }
    // The physical placement keeps the round-robin balance.
    for (unsigned c = 0; c < kChannels; ++c)
        EXPECT_EQ(mapped_per_channel[c], kBlocks / kChannels)
            << "channel " << c;
    EXPECT_EQ(media.mappedBlocks(), kBlocks);
}
