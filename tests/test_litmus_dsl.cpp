/**
 * @file
 * Unit tests for the litmus DSL: parsing, validation errors, and the
 * per-mode lowering contract.
 */

#include <gtest/gtest.h>

#include "litmus/corpus.hh"
#include "litmus/litmus.hh"

using namespace bbb::litmus;

// gtest also defines a class named Test.
using LitTest = bbb::litmus::Test;

namespace
{

LitTest
parseOk(const std::string &text)
{
    LitTest t;
    std::string err;
    EXPECT_TRUE(parseTest(text, &t, &err)) << err;
    return t;
}

std::string
parseErr(const std::string &text)
{
    LitTest t;
    std::string err;
    EXPECT_FALSE(parseTest(text, &t, &err));
    return err;
}

} // namespace

TEST(LitmusDsl, ParsesTheClassicSbShape)
{
    LitTest t = parseOk("test sb\n"
                     "smoke\n"
                     "t0: st x 1; ld y r0\n"
                     "t1: st y 1; ld x r1\n"
                     "sometimes final r0=0 r1=0\n"
                     "sometimes [pmem_strict] crash x=1 y=1\n");
    EXPECT_EQ(t.name, "sb");
    EXPECT_TRUE(t.smoke);
    EXPECT_FALSE(t.battery);
    ASSERT_EQ(t.threads.size(), 2u);
    ASSERT_EQ(t.threads[0].size(), 2u);
    EXPECT_EQ(t.threads[0][0].kind, SrcKind::Store);
    EXPECT_EQ(t.threads[0][0].val, 1u);
    EXPECT_EQ(t.threads[0][1].kind, SrcKind::Load);
    ASSERT_EQ(t.vars.size(), 2u);
    EXPECT_EQ(t.vars[0], "x");
    EXPECT_EQ(t.vars[1], "y");
    ASSERT_EQ(t.regs.size(), 2u);
    // Default mode set: the strict trio plus the strict-on-PMEM
    // lowering; plain pmem only by explicit `modes`.
    EXPECT_EQ(t.modes.size(), 4u);
    EXPECT_TRUE(t.runsIn(Mode::Bbb));
    EXPECT_TRUE(t.runsIn(Mode::PmemStrict));
    EXPECT_FALSE(t.runsIn(Mode::Pmem));
    ASSERT_EQ(t.witnesses.size(), 2u);
    EXPECT_FALSE(t.witnesses[0].on_crash);
    EXPECT_TRUE(t.witnesses[1].on_crash);
    ASSERT_EQ(t.witnesses[1].modes.size(), 1u);
    EXPECT_EQ(t.witnesses[1].modes[0], Mode::PmemStrict);
}

TEST(LitmusDsl, CommentsAndBlankLinesIgnored)
{
    LitTest t = parseOk("test c\n"
                     "# a comment\n"
                     "\n"
                     "t0: st x 1  # trailing comment\n");
    ASSERT_EQ(t.threads.size(), 1u);
    EXPECT_EQ(t.threads[0].size(), 1u);
}

TEST(LitmusDsl, RejectsMalformedInput)
{
    EXPECT_NE(parseErr("t0: st x 1\n").find("test NAME"),
              std::string::npos);
    EXPECT_NE(parseErr("test t\nt0: frob x\n").find("unknown op"),
              std::string::npos);
    EXPECT_NE(parseErr("test t\nmodes warp\nt0: st x 1\n")
                  .find("unknown mode"),
              std::string::npos);
    // Too many ops on one thread.
    std::string big = "test t\nt0: st x 1";
    for (int i = 0; i < 8; ++i)
        big += "; st x 1";
    big += "\n";
    EXPECT_FALSE(parseErr(big).empty());
}

TEST(LitmusDsl, BatteryValidation)
{
    // Double store to one variable breaks the prefix-cut oracle.
    EXPECT_NE(parseErr("test t\nbattery\nmodes bbb\n"
                       "t0: st x 1; st x 2\n")
                  .find("once"),
              std::string::npos);
    // Non-bbPB modes have no ordered crash drain to sweep.
    EXPECT_NE(parseErr("test t\nbattery\nmodes eadr\nt0: st x 1\n")
                  .find("bbb/procside"),
              std::string::npos);
    LitTest t = parseOk("test t\nbattery\nmodes bbb procside\n"
                     "t0: st x 1; st y 2\n");
    EXPECT_TRUE(t.battery);
}

TEST(LitmusDsl, LoweringPerMode)
{
    LitTest t = parseOk("test t\nmodes bbb pmem pmem_strict\n"
                     "t0: st x 1; flush x; sfence; mfence; ld x r0\n");

    // Strict machine: persist instructions vanish, mfence survives.
    Program bbb_prog = lower(t, Mode::Bbb);
    ASSERT_EQ(bbb_prog.threads[0].size(), 3u);
    EXPECT_EQ(bbb_prog.threads[0][0].kind, MKind::Store);
    EXPECT_EQ(bbb_prog.threads[0][1].kind, MKind::Fence);
    EXPECT_EQ(bbb_prog.threads[0][2].kind, MKind::Load);

    // Px86 machine: the program's own flush/fence are kept as written.
    Program pmem_prog = lower(t, Mode::Pmem);
    ASSERT_EQ(pmem_prog.threads[0].size(), 5u);
    EXPECT_EQ(pmem_prog.threads[0][1].kind, MKind::Flush);
    EXPECT_EQ(pmem_prog.threads[0][2].kind, MKind::Fence);

    // Strict-on-PMEM: every store expands to st;flush;sfence, and the
    // programmer's own persist ops are still kept.
    Program strict_prog = lower(t, Mode::PmemStrict);
    ASSERT_EQ(strict_prog.threads[0].size(), 7u);
    EXPECT_EQ(strict_prog.threads[0][0].kind, MKind::Store);
    EXPECT_EQ(strict_prog.threads[0][1].kind, MKind::Flush);
    EXPECT_EQ(strict_prog.threads[0][1].var, strict_prog.threads[0][0].var);
    EXPECT_EQ(strict_prog.threads[0][2].kind, MKind::Fence);
}

TEST(LitmusDsl, FlushOptLowersLikeFlush)
{
    LitTest t = parseOk("test t\nmodes pmem\nt0: st x 1; flushopt x\n");
    Program p = lower(t, Mode::Pmem);
    ASSERT_EQ(p.threads[0].size(), 2u);
    EXPECT_EQ(p.threads[0][1].kind, MKind::Flush);
}

TEST(LitmusDsl, CorpusParsesAndIsBigEnough)
{
    const std::vector<LitTest> &all = corpus();
    EXPECT_GE(all.size(), 25u);
    // The smoke subset must cover each seeded-mutation detector: a
    // same-variable multi-store test (drain order), a battery test
    // (crash-drain order), and a pmem/pmem_strict test (flush drop).
    std::vector<LitTest> smoke = smokeCorpus();
    EXPECT_GE(smoke.size(), 5u);
    bool multi_store = false, battery = false, px86 = false;
    for (const LitTest &t : smoke) {
        if (t.battery)
            battery = true;
        if (t.runsIn(Mode::Pmem) || t.runsIn(Mode::PmemStrict))
            px86 = true;
        std::vector<unsigned> stores(t.vars.size(), 0);
        for (const auto &th : t.threads) {
            for (const SrcOp &op : th) {
                if (op.kind == SrcKind::Store &&
                    ++stores[unsigned(op.var)] > 1)
                    multi_store = true;
            }
        }
    }
    EXPECT_TRUE(multi_store);
    EXPECT_TRUE(battery);
    EXPECT_TRUE(px86);
    EXPECT_NE(findTest("sb"), nullptr);
    EXPECT_EQ(findTest("no-such-test"), nullptr);
}
