/**
 * @file
 * Unit tests for the Table IV workloads: structural correctness of each
 * data structure on simulated memory, recovery checking, persist-store
 * fractions, and functional-vs-timed equivalence.
 */

#include <gtest/gtest.h>

#include "api/experiment.hh"
#include "api/system.hh"
#include "workloads/array_ops.hh"
#include "workloads/workload.hh"

using namespace bbb;

namespace
{

SystemConfig
cfg(PersistMode mode = PersistMode::BbbMemSide, unsigned cores = 2)
{
    SystemConfig c;
    c.num_cores = cores;
    c.l1d.size_bytes = 8_KiB;
    c.llc.size_bytes = 64_KiB;
    c.dram.size_bytes = 128_MiB;
    c.nvmm.size_bytes = 128_MiB;
    c.mode = mode;
    return c;
}

WorkloadParams
smallParams()
{
    WorkloadParams p;
    p.ops_per_thread = 200;
    p.initial_elements = 300;
    p.array_elements = 1 << 12;
    return p;
}

} // namespace

// ---------------------------------------------------------------------
// Parameterized across every registered workload.
// ---------------------------------------------------------------------

class EveryWorkload : public ::testing::TestWithParam<std::string>
{
};

TEST_P(EveryWorkload, RunsAndRecoversConsistently)
{
    System sys(cfg());
    auto wl = makeWorkload(GetParam(), smallParams());
    wl->install(sys);
    sys.run();
    sys.checkInvariants();
    sys.crashNow();
    RecoveryResult res = wl->checkRecovery(sys.pmemImage());
    EXPECT_TRUE(res.consistent()) << GetParam();
    EXPECT_GT(res.checked, 0u);
    EXPECT_EQ(res.intact, res.checked);
}

TEST_P(EveryWorkload, GeneratesPersistingStores)
{
    System sys(cfg());
    auto wl = makeWorkload(GetParam(), smallParams());
    wl->install(sys);
    sys.run();
    EXPECT_GT(sys.stats().lookup("hierarchy", "persisting_stores"), 0u)
        << GetParam();
}

TEST_P(EveryWorkload, DeterministicAcrossRuns)
{
    auto run_once = [&]() {
        System sys(cfg());
        auto wl = makeWorkload(GetParam(), smallParams());
        wl->install(sys);
        sys.run();
        return std::make_pair(sys.executionTime(),
                              sys.effectiveNvmmWrites());
    };
    EXPECT_EQ(run_once(), run_once()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    TableIV, EveryWorkload,
    ::testing::Values("rtree", "ctree", "hashmap", "mutateNC", "mutateC",
                      "swapNC", "swapC", "linkedlist", "rtree-spatial",
                      "btree", "skiplist"),
    [](const auto &param_info) {
        std::string name = param_info.param;
        for (auto &ch : name) {
            if (ch == '-')
                ch = '_';
        }
        return name;
    });

// ---------------------------------------------------------------------
// Structure-specific checks.
// ---------------------------------------------------------------------

TEST(Workloads, LinkedListCountsMatchInsertions)
{
    System sys(cfg());
    WorkloadParams p = smallParams();
    auto wl = makeWorkload("linkedlist", p);
    wl->install(sys);
    sys.run();
    sys.crashNow();
    RecoveryResult res = wl->checkRecovery(sys.pmemImage());
    EXPECT_EQ(res.checked,
              2 * (p.initial_elements + p.ops_per_thread));
}

TEST(Workloads, CtreeKeepsAllInsertedKeysReachable)
{
    System sys(cfg());
    WorkloadParams p = smallParams();
    auto wl = makeWorkload("ctree", p);
    wl->install(sys);
    sys.run();
    sys.crashNow();
    RecoveryResult res = wl->checkRecovery(sys.pmemImage());
    // BST insertion never loses nodes.
    EXPECT_EQ(res.checked, 2 * (p.initial_elements + p.ops_per_thread));
}

TEST(Workloads, RbtreeKeepsAllInsertedKeysReachable)
{
    System sys(cfg());
    WorkloadParams p = smallParams();
    auto wl = makeWorkload("rtree", p);
    wl->install(sys);
    sys.run();
    sys.crashNow();
    RecoveryResult res = wl->checkRecovery(sys.pmemImage());
    EXPECT_EQ(res.checked, 2 * (p.initial_elements + p.ops_per_thread));
}

TEST(Workloads, HashmapChecksEveryInsertion)
{
    System sys(cfg());
    WorkloadParams p = smallParams();
    auto wl = makeWorkload("hashmap", p);
    wl->install(sys);
    sys.run();
    sys.crashNow();
    RecoveryResult res = wl->checkRecovery(sys.pmemImage());
    EXPECT_EQ(res.checked, 2 * (p.initial_elements + p.ops_per_thread));
}

TEST(Workloads, ArrayEncodingRoundTrips)
{
    for (std::uint32_t payload : {0u, 1u, 12345u, 0xffffffffu}) {
        std::uint64_t word = ArrayWorkload::encode(payload);
        EXPECT_TRUE(ArrayWorkload::validate(word));
        EXPECT_EQ(static_cast<std::uint32_t>(word >> 32), payload);
    }
    EXPECT_FALSE(ArrayWorkload::validate(0xdeadbeefdeadbeefull));
    // Zero is NOT a valid encoding by luck of the hash; assert whichever
    // way it falls stays stable (documented behaviour for fresh memory).
    EXPECT_EQ(ArrayWorkload::validate(ArrayWorkload::encode(0)), true);
}

TEST(Workloads, ArrayFullyValidatesAfterRun)
{
    System sys(cfg());
    WorkloadParams p = smallParams();
    auto wl = makeWorkload("mutateC", p);
    wl->install(sys);
    sys.run();
    sys.crashNow();
    RecoveryResult res = wl->checkRecovery(sys.pmemImage());
    EXPECT_EQ(res.checked, p.array_elements);
    EXPECT_EQ(res.torn, 0u);
}

TEST(Workloads, NonConflictingThreadsTouchDisjointSlices)
{
    System sys(cfg(PersistMode::BbbMemSide, 2));
    WorkloadParams p = smallParams();
    auto wl = makeWorkload("mutateNC", p);
    wl->install(sys);
    sys.run();
    // Disjoint slices => no cross-core invalidation traffic on the array
    // (the hot heap-header blocks may still bounce a little).
    EXPECT_LT(sys.stats().lookup("hierarchy", "invalidations"), 10u);
}

TEST(Workloads, ConflictingThreadsCauseCoherenceTraffic)
{
    System sys(cfg(PersistMode::BbbMemSide, 2));
    WorkloadParams p = smallParams();
    p.array_elements = 1 << 6; // tiny array: heavy conflicts
    auto wl = makeWorkload("swapC", p);
    wl->install(sys);
    sys.run();
    EXPECT_GT(sys.stats().lookup("hierarchy", "invalidations"), 50u);
    // Conflicting writes migrate bbPB entries between cores (Fig. 6a/b).
    EXPECT_GT(sys.stats().lookup("bbpb", "migrations"), 0u);
    sys.checkInvariants();
}

TEST(Workloads, UnknownNameIsFatal)
{
    EXPECT_DEATH(
        { makeWorkload("nosuch", smallParams()); }, "unknown workload");
}

TEST(Workloads, RegistryNamesInstantiate)
{
    for (const auto &name : workloadNames()) {
        auto wl = makeWorkload(name, smallParams());
        ASSERT_NE(wl, nullptr);
        EXPECT_EQ(wl->name(), name);
    }
}

TEST(Workloads, PStoreFractionsAreSane)
{
    // Every workload's persisting-store fraction of all stores must be
    // substantial (they are persist-stress workloads), and array
    // workloads must exceed tree workloads (Table IV shapes).
    WorkloadParams p = smallParams();
    auto frac = [&](const char *name) {
        ExperimentResult r = runExperiment(cfg(), name, p);
        EXPECT_GT(r.persisting_stores, 0u) << name;
        return r.pStoreFraction();
    };
    EXPECT_GT(frac("hashmap"), 0.5); // all our stores target the heap
    EXPECT_GT(frac("mutateNC"), 0.5);
}
