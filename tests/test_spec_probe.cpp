/**
 * @file
 * Unit tests for the speculative L1 probe on worker shards
 * (sim/shard.hh, cache/shadow_l1.hh): the squash/replay recovery path
 * must leave simulation results byte-identical to an inline run, both
 * when mispredicts are injected deterministically
 * (SystemConfig::spec_mispredict_period) and when a remote store
 * genuinely invalidates a probed line between probe and commit (driven
 * through an exact litmus schedule). A skip-validate mutation
 * (BBB_LITMUS_MUTATE=spec-skip-validate) must be observable — it is the
 * seeded bug the litmus harness exists to catch.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "api/system.hh"
#include "litmus/corpus.hh"
#include "litmus/litmus.hh"
#include "litmus/model.hh"
#include "litmus/sim_driver.hh"
#include "workloads/workload.hh"

using namespace bbb;

namespace
{

/** Scope guard: force canonical-report mode, restore on exit. */
struct CanonicalGuard
{
    CanonicalGuard()
    {
        const char *prev = std::getenv("BBB_REPORT_CANONICAL");
        if (prev) {
            _saved = prev;
            _had = true;
        }
        setenv("BBB_REPORT_CANONICAL", "1", 1);
    }
    ~CanonicalGuard()
    {
        if (_had)
            setenv("BBB_REPORT_CANONICAL", _saved.c_str(), 1);
        else
            unsetenv("BBB_REPORT_CANONICAL");
    }

  private:
    std::string _saved;
    bool _had = false;
};

/** Scope guard for the BBB_LITMUS_MUTATE switch. */
struct MutateGuard
{
    explicit MutateGuard(const char *name)
    {
        setenv("BBB_LITMUS_MUTATE", name, 1);
    }
    ~MutateGuard() { unsetenv("BBB_LITMUS_MUTATE"); }
};

struct SpecRun
{
    std::string json;
    std::uint64_t spec_hits = 0;
    std::uint64_t squashes = 0;
};

/**
 * One hashmap run: canonical snapshot plus the host-side speculation
 * counters. @p period injects a forced squash (with the *correct*
 * value, so recovery is exercised without perturbing the simulation)
 * every Nth successful validation.
 */
SpecRun
hashmapRun(unsigned shards, bool spec, std::uint64_t period)
{
    SystemConfig cfg;
    cfg.num_cores = 4;
    cfg.shards = shards;
    cfg.spec = spec;
    cfg.spec_mispredict_period = period;
    cfg.l1d.size_bytes = 4_KiB;
    cfg.llc.size_bytes = 16_KiB;
    cfg.dram.size_bytes = 64_MiB;
    cfg.nvmm.size_bytes = 64_MiB;
    cfg.bbpb.entries = 8;

    WorkloadParams params;
    params.ops_per_thread = 150;
    params.initial_elements = 60;
    params.array_elements = 1 << 12;

    System sys(cfg);
    auto wl = makeWorkload("hashmap", params);
    wl->install(sys);
    sys.run();

    SpecRun out;
    out.json = sys.snapshotMetrics().toJson();
    if (ShardRuntime *rt = sys.shardRuntime()) {
        out.spec_hits = rt->specHits();
        out.squashes = rt->squashes();
    }
    return out;
}

/**
 * The corr schedule that manufactures a genuine mispredict at width 4:
 * t1's first load installs x into its L1 (and the shadow), so its
 * second load probe-hits the stale value and the fiber runs ahead;
 * t0's two stores then invalidate the line before the commit lane
 * executes that second load, which must squash and replay to r1=2.
 * Thread 1 maps to worker shard 1 at width 4 (core % shards).
 */
constexpr char kCorrMispredictSchedule[] = "1 0 0d 0 0d 1";

litmus::SimResult
corrRun(unsigned width)
{
    const litmus::Test *corr = litmus::findTest("corr");
    EXPECT_NE(corr, nullptr);
    litmus::Program prog = litmus::lower(*corr, litmus::Mode::Bbb);
    std::vector<litmus::Step> steps;
    std::string err;
    EXPECT_TRUE(
        litmus::parseSchedule(kCorrMispredictSchedule, &steps, &err))
        << err;
    return litmus::runSchedule(*corr, prog, litmus::Mode::Bbb, width,
                               steps);
}

} // namespace

TEST(SpecProbe, InjectedMispredictsSquashAndStayByteIdentical)
{
    CanonicalGuard canonical;
    SpecRun inline_run = hashmapRun(1, false, 0);
    // Every validation squashes (period 1) — the harshest replay load —
    // and a sparser period that interleaves validated and squashed ops.
    for (std::uint64_t period : {std::uint64_t{1}, std::uint64_t{7}}) {
        SpecRun wide = hashmapRun(4, true, period);
        // Period 1 turns every validation into a squash, so only the
        // squash counter moves; sparser periods leave validated hits.
        EXPECT_GT(wide.spec_hits + wide.squashes, 0u)
            << "period " << period;
        EXPECT_GT(wide.squashes, 0u) << "period " << period;
        EXPECT_EQ(inline_run.json, wide.json) << "period " << period;
    }
    // And with speculation clean (no injection): still byte-identical.
    SpecRun clean = hashmapRun(4, true, 0);
    EXPECT_GT(clean.spec_hits, 0u);
    EXPECT_EQ(inline_run.json, clean.json);
}

TEST(SpecProbe, GenuineMispredictSquashesToInlineResult)
{
    litmus::SimResult narrow = corrRun(1);
    litmus::SimResult wide = corrRun(4);
    ASSERT_TRUE(narrow.ok) << narrow.error;
    ASSERT_TRUE(wide.ok) << wide.error;
    ASSERT_TRUE(narrow.completed);
    ASSERT_TRUE(wide.completed);
    // r0 observed the initial value; r1 was probed stale (0) on the
    // worker but must read 2 after the squash replays the load.
    EXPECT_EQ(narrow.regs[0], 0u);
    EXPECT_EQ(narrow.regs[1], 2u);
    EXPECT_EQ(wide.regs, narrow.regs);
    EXPECT_EQ(wide.reg_done, narrow.reg_done);
    EXPECT_EQ(wide.final_mem, narrow.final_mem);
    EXPECT_EQ(wide.image, narrow.image);
}

TEST(SpecProbe, SkipValidateMutationIsCaught)
{
    MutateGuard mutate("spec-skip-validate");
    // Inline width: speculation is inert, the mutation cannot bite.
    litmus::SimResult narrow = corrRun(1);
    ASSERT_TRUE(narrow.ok) << narrow.error;
    EXPECT_EQ(narrow.regs[1], 2u);
    // Worker width: the mutation skips commit-time validation, so the
    // stale probed value survives in r1 — exactly the divergence the
    // litmus harness flags. This both kills the mutant and proves the
    // schedule above manufactures a real mispredict.
    litmus::SimResult wide = corrRun(4);
    ASSERT_TRUE(wide.ok) << wide.error;
    EXPECT_EQ(wide.regs[1], 0u)
        << "mutated run did not keep the stale speculative value; the "
           "schedule no longer exercises a mispredict";
}
