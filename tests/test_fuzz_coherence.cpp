/**
 * @file
 * Randomized differential testing of the memory system.
 *
 * A shadow reference model (a flat word map updated at each operation)
 * runs alongside the real hierarchy. For tens of thousands of random
 * loads/stores across cores, blocks, and modes:
 *
 *   - every load must return the shadow value (coherence correctness),
 *   - structural invariants must hold at random intervals,
 *   - after a crash, every persistent word in the NVMM image must hold a
 *     value that word actually had at some point (no torn or fabricated
 *     bytes), and under BBB it must hold the *latest* value (strict
 *     persistency at commit).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "api/system.hh"

using namespace bbb;

namespace
{

/** Scope guard: force canonical-report mode, restore on exit. */
struct CanonicalGuard
{
    CanonicalGuard()
    {
        const char *prev = std::getenv("BBB_REPORT_CANONICAL");
        if (prev) {
            _saved = prev;
            _had = true;
        }
        setenv("BBB_REPORT_CANONICAL", "1", 1);
    }
    ~CanonicalGuard()
    {
        if (_had)
            setenv("BBB_REPORT_CANONICAL", _saved.c_str(), 1);
        else
            unsetenv("BBB_REPORT_CANONICAL");
    }

  private:
    std::string _saved;
    bool _had = false;
};

SystemConfig
fuzzCfg(PersistMode mode, std::uint64_t seed)
{
    SystemConfig cfg;
    cfg.num_cores = 4;
    cfg.l1d.size_bytes = 2_KiB; // tiny: maximal eviction pressure
    cfg.l1d.assoc = 2;
    cfg.llc.size_bytes = 8_KiB;
    cfg.llc.assoc = 4;
    cfg.dram.size_bytes = 64_MiB;
    cfg.nvmm.size_bytes = 64_MiB;
    cfg.mode = mode;
    cfg.bbpb.entries = 4; // small buffer: constant drain churn
    cfg.seed = seed;
    return cfg;
}

} // namespace

class FuzzAllModes
    : public ::testing::TestWithParam<std::tuple<PersistMode, int>>
{
};

TEST_P(FuzzAllModes, LoadsMatchShadowAndInvariantsHold)
{
    auto [mode, seed] = GetParam();
    SystemConfig cfg = fuzzCfg(mode, static_cast<std::uint64_t>(seed));
    System sys(cfg);

    const unsigned kWords = 64; // words spread over 16 blocks
    Addr base = sys.heap().alloc(0, kWords * 8, 64);

    // Shadow state, updated at the moment the hierarchy op is performed.
    std::unordered_map<Addr, std::uint64_t> shadow;
    std::unordered_map<Addr, std::unordered_set<std::uint64_t>> history;
    for (unsigned w = 0; w < kWords; ++w) {
        shadow[base + w * 8] = 0;
        history[base + w * 8].insert(0);
    }

    // Drive the hierarchy directly (deterministic interleaving; the
    // fiber/core layer is exercised by the workload tests).
    Rng rng(static_cast<std::uint64_t>(seed) * 977 + 3);
    std::uint64_t value = 1;
    for (int op = 0; op < 20000; ++op) {
        CoreId c = static_cast<CoreId>(rng.below(4));
        Addr a = base + rng.below(kWords) * 8;
        if (rng.chance(0.5)) {
            std::uint64_t v = value++;
            AccessResult r = sys.hierarchy().store(c, a, 8, &v);
            if (r.status == StoreStatus::Done) {
                shadow[a] = v;
                history[a].insert(v);
            } else {
                // Rejected persist: let drains progress, then move on.
                sys.eventQueue().run(sys.eventQueue().now() +
                                     cfg.cycles(64));
            }
        } else {
            std::uint64_t got = 0;
            sys.hierarchy().load(c, a, 8, &got);
            ASSERT_EQ(got, shadow[a]) << "op " << op;
        }
        if (op % 1024 == 0) {
            sys.checkInvariants();
            sys.eventQueue().run(sys.eventQueue().now() + cfg.cycles(32));
        }
    }
    sys.checkInvariants();

    // Crash and audit the persistent image word by word.
    sys.crashNow();
    PmemImage img = sys.pmemImage();
    for (unsigned w = 0; w < kWords; ++w) {
        Addr a = base + w * 8;
        std::uint64_t persisted = img.read64(a);
        EXPECT_TRUE(history[a].count(persisted))
            << "word " << w << " holds a value never written";
        if (cfg.mode == PersistMode::BbbMemSide ||
            cfg.mode == PersistMode::BbbProcSide ||
            cfg.mode == PersistMode::Eadr) {
            // Persist-at-commit schemes: the image is the latest value.
            EXPECT_EQ(persisted, shadow[a]) << "word " << w;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FuzzAllModes,
    ::testing::Combine(::testing::Values(PersistMode::AdrUnsafe,
                                         PersistMode::Eadr,
                                         PersistMode::BbbMemSide,
                                         PersistMode::BbbProcSide),
                       ::testing::Values(1, 2, 3)),
    [](const auto &param_info) {
        std::string name = persistModeName(std::get<0>(param_info.param));
        for (auto &ch : name) {
            if (ch == '-')
                ch = '_';
        }
        return name + "_s" + std::to_string(std::get<1>(param_info.param));
    });

TEST(FuzzThreads, RandomThreadedTrafficStaysCoherent)
{
    // End-to-end variant through real cores/fibers: each thread hammers a
    // shared region with random ops; a per-block owner-tag protocol makes
    // values self-describing so cross-thread races stay checkable.
    SystemConfig cfg = fuzzCfg(PersistMode::BbbMemSide, 99);
    System sys(cfg);
    const unsigned kBlocks = 16;
    Addr base = sys.heap().alloc(0, kBlocks * kBlockSize, 64);

    for (CoreId t = 0; t < cfg.num_cores; ++t) {
        sys.onThread(t, [&, t](ThreadContext &tc) {
            for (int i = 0; i < 2000; ++i) {
                Addr block = base + tc.rng().below(kBlocks) * kBlockSize;
                // Each 8-byte word in a block is paired: [value, writer].
                // A reader must observe a matching pair.
                if (tc.rng().chance(0.5)) {
                    std::uint64_t v = tc.rng().next();
                    tc.store64(block, v);
                    tc.store64(block + 8, v ^ t);
                } else {
                    std::uint64_t v = tc.load64(block);
                    std::uint64_t tag = tc.load64(block + 8);
                    // The pair may be mid-update by another thread; the
                    // tag must then still decode to a valid core id.
                    std::uint64_t writer = v ^ tag;
                    if (writer >= cfg.num_cores) {
                        // Benign: torn pair across two stores in flight.
                        continue;
                    }
                }
            }
        });
    }
    sys.run();
    sys.checkInvariants();
}

TEST(FuzzThreads, ShardSpecSweepIsByteIdentical)
{
    // The same random threaded traffic across the kernel-width and
    // speculative-probe grid: every (shards, spec) cell must produce a
    // byte-identical canonical snapshot. Load-dependent control flow in
    // the thread bodies makes this a strong check on squash/replay —
    // a mispredicted load that escaped validation would steer a fiber
    // down a different path and change the metric tree.
    CanonicalGuard canonical;
    auto run = [](unsigned shards, bool spec) {
        SystemConfig cfg = fuzzCfg(PersistMode::BbbMemSide, 424242);
        cfg.shards = shards;
        cfg.spec = spec;
        System sys(cfg);
        const unsigned kBlocks = 16;
        Addr base = sys.heap().alloc(0, kBlocks * kBlockSize, 64);
        for (CoreId t = 0; t < cfg.num_cores; ++t) {
            // Thread state lives entirely in the ThreadContext (rebuilt
            // with the same seed on squash), so the host-side reset is
            // empty — registering it is what arms speculation.
            sys.onThreadReset(t, [] {});
            sys.onThread(t, [&, t](ThreadContext &tc) {
                for (int i = 0; i < 1000; ++i) {
                    Addr block =
                        base + tc.rng().below(kBlocks) * kBlockSize;
                    if (tc.rng().chance(0.5)) {
                        std::uint64_t v = tc.rng().next();
                        tc.store64(block, v);
                        tc.store64(block + 8, v ^ t);
                    } else {
                        std::uint64_t v = tc.load64(block);
                        std::uint64_t tag = tc.load64(block + 8);
                        std::uint64_t writer = v ^ tag;
                        if (writer >= cfg.num_cores) {
                            // Benign torn pair; still load-dependent
                            // control flow the replay must reproduce.
                            continue;
                        }
                    }
                }
            });
        }
        sys.run();
        sys.checkInvariants();
        return sys.snapshotMetrics().toJson();
    };

    std::string base_json = run(1, false);
    for (unsigned shards : {1u, 2u, 4u}) {
        for (bool spec : {false, true}) {
            if (shards == 1 && !spec)
                continue; // the reference cell itself
            EXPECT_EQ(base_json, run(shards, spec))
                << "shards " << shards << " spec " << spec;
        }
    }
}
