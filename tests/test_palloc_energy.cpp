/**
 * @file
 * Unit tests for the persistent heap allocator and the energy/battery
 * model. The energy tests pin our model to the paper's published numbers
 * (Tables VI-X).
 */

#include <gtest/gtest.h>

#include "energy/energy_model.hh"
#include "mem/addr_map.hh"
#include "persist/palloc.hh"

using namespace bbb;

namespace
{
AddrMap
map1()
{
    return AddrMap(1_GiB, 1_GiB);
}
} // namespace

TEST(Palloc, AllocationsAreInPersistentRange)
{
    AddrMap map = map1();
    PersistentHeap heap(map, 4);
    for (unsigned arena = 0; arena < 4; ++arena) {
        Addr a = heap.alloc(arena, 24);
        EXPECT_TRUE(map.isPersistent(a));
        EXPECT_TRUE(map.isPersistent(a + 23));
    }
}

TEST(Palloc, ArenasAreDisjoint)
{
    AddrMap map = map1();
    PersistentHeap heap(map, 4);
    Addr a0 = heap.alloc(0, 64);
    Addr a1 = heap.alloc(1, 64);
    EXPECT_GE(a1, heap.arenaBase(1));
    EXPECT_LT(a0, heap.arenaBase(1));
}

TEST(Palloc, RespectsAlignment)
{
    AddrMap map = map1();
    PersistentHeap heap(map, 1);
    heap.alloc(0, 3); // misalign the frontier
    Addr a = heap.alloc(0, 32, 32);
    EXPECT_EQ(a % 32, 0u);
    Addr b = heap.alloc(0, 64, 64);
    EXPECT_EQ(b % 64, 0u);
}

TEST(Palloc, SubBlockObjectsNeverStraddleBlocks)
{
    AddrMap map = map1();
    PersistentHeap heap(map, 1);
    for (int i = 0; i < 200; ++i) {
        Addr a = heap.alloc(0, 24);
        EXPECT_EQ(blockAlign(a), blockAlign(a + 23))
            << "allocation " << i << " straddles a block";
    }
}

TEST(Palloc, RootSlotsAreDistinctAndInHeader)
{
    AddrMap map = map1();
    PersistentHeap heap(map, 1);
    for (unsigned i = 0; i + 1 < PersistentHeap::kRootSlots; ++i) {
        EXPECT_EQ(heap.rootAddr(i + 1) - heap.rootAddr(i), 8u);
        EXPECT_LT(heap.rootAddr(i),
                  map.persistBase() + PersistentHeap::kHeaderBytes);
    }
    Addr first = heap.alloc(0, 8);
    EXPECT_GE(first, map.persistBase() + PersistentHeap::kHeaderBytes);
}

TEST(Palloc, AllocatedTracksUsage)
{
    AddrMap map = map1();
    PersistentHeap heap(map, 2);
    EXPECT_EQ(heap.allocated(0), 0u);
    heap.alloc(0, 100);
    EXPECT_GE(heap.allocated(0), 100u);
    EXPECT_EQ(heap.allocated(1), 0u);
}

TEST(PallocDeath, BadArenaAndSlotPanic)
{
    AddrMap map = map1();
    PersistentHeap heap(map, 2);
    EXPECT_DEATH(heap.alloc(5, 8), "arena");
    EXPECT_DEATH(heap.rootAddr(99), "root slot");
}

// ---------------------------------------------------------------------
// Energy model vs the paper's published tables.
// ---------------------------------------------------------------------

TEST(Energy, TableVII_DrainEnergy)
{
    DrainCostModel mobile(mobilePlatform());
    EXPECT_NEAR(mobile.eadrDrainEnergyJ() * 1e3, 46.5, 0.5);  // mJ
    EXPECT_NEAR(mobile.bbbDrainEnergyJ(32) * 1e6, 145.0, 2.0); // uJ

    DrainCostModel server(serverPlatform());
    EXPECT_NEAR(server.eadrDrainEnergyJ() * 1e3, 550.0, 5.0);
    EXPECT_NEAR(server.bbbDrainEnergyJ(32) * 1e6, 775.0, 5.0);

    EXPECT_NEAR(mobile.eadrDrainEnergyJ() / mobile.bbbDrainEnergyJ(32),
                320.0, 5.0);
    EXPECT_NEAR(server.eadrDrainEnergyJ() / server.bbbDrainEnergyJ(32),
                709.0, 10.0);
}

TEST(Energy, TableVIII_DrainTime)
{
    DrainCostModel mobile(mobilePlatform());
    EXPECT_NEAR(mobile.eadrDrainTimeS() * 1e3, 0.8, 0.15); // ms
    EXPECT_NEAR(mobile.bbbDrainTimeS(32) * 1e6, 2.6, 0.2); // us

    DrainCostModel server(serverPlatform());
    EXPECT_NEAR(server.eadrDrainTimeS() * 1e3, 1.8, 0.1);
    EXPECT_NEAR(server.bbbDrainTimeS(32) * 1e6, 2.4, 0.1);
}

TEST(Energy, TableIX_BatteryVolumes)
{
    DrainCostModel mobile(mobilePlatform());
    EXPECT_NEAR(mobile.eadrBatteryVolumeMm3(BatteryTech::SuperCap), 2900.0,
                50.0);
    EXPECT_NEAR(mobile.eadrBatteryVolumeMm3(BatteryTech::LiThin), 30.0,
                2.0);
    EXPECT_NEAR(mobile.bbbBatteryVolumeMm3(BatteryTech::SuperCap, 32), 4.1,
                0.1);
    EXPECT_NEAR(mobile.bbbBatteryVolumeMm3(BatteryTech::LiThin, 32), 0.04,
                0.005);

    DrainCostModel server(serverPlatform());
    EXPECT_NEAR(server.eadrBatteryVolumeMm3(BatteryTech::SuperCap), 34000,
                500);
    EXPECT_NEAR(server.bbbBatteryVolumeMm3(BatteryTech::SuperCap, 32),
                21.6, 0.2);
    EXPECT_NEAR(server.bbbBatteryVolumeMm3(BatteryTech::LiThin, 32), 0.21,
                0.01);
}

TEST(Energy, TableIX_AreaRatios)
{
    DrainCostModel mobile(mobilePlatform());
    double bbb_sc = mobile.bbbBatteryVolumeMm3(BatteryTech::SuperCap, 32);
    EXPECT_NEAR(mobile.areaRatioToCore(bbb_sc), 0.972, 0.02);
    double bbb_li = mobile.bbbBatteryVolumeMm3(BatteryTech::LiThin, 32);
    EXPECT_NEAR(mobile.areaRatioToCore(bbb_li), 0.045, 0.005);
    double eadr_sc = mobile.eadrBatteryVolumeMm3(BatteryTech::SuperCap);
    EXPECT_NEAR(mobile.areaRatioToCore(eadr_sc), 77.0, 2.0);
}

TEST(Energy, TableX_Sweep)
{
    DrainCostModel mobile(mobilePlatform());
    DrainCostModel server(serverPlatform());
    const unsigned sizes[] = {1, 4, 16, 32, 64, 256, 1024};
    const double paper_mobile[] = {0.12, 0.50, 2.02, 4.1,
                                   8.1, 32.3, 129.3};
    const double paper_server[] = {0.7, 2.7, 10.8, 21.6,
                                   43.1, 172.4, 689.7};
    for (unsigned i = 0; i < 7; ++i) {
        EXPECT_NEAR(
            mobile.bbbBatteryVolumeMm3(BatteryTech::SuperCap, sizes[i]),
            paper_mobile[i], paper_mobile[i] * 0.06 + 0.01);
        EXPECT_NEAR(
            server.bbbBatteryVolumeMm3(BatteryTech::SuperCap, sizes[i]),
            paper_server[i], paper_server[i] * 0.06 + 0.01);
    }
}

TEST(Energy, ScalesLinearlyWithEntries)
{
    DrainCostModel m(mobilePlatform());
    EXPECT_DOUBLE_EQ(m.bbbDrainEnergyJ(64), 2 * m.bbbDrainEnergyJ(32));
    EXPECT_DOUBLE_EQ(m.bbbDrainTimeS(64), 2 * m.bbbDrainTimeS(32));
}

TEST(Energy, DrainEnergyDecomposition)
{
    DrainCostModel m(mobilePlatform());
    // L1 bytes cost more per byte than L2 bytes.
    EXPECT_GT(m.drainEnergyJ(1024, 0, 0), m.drainEnergyJ(0, 1024, 0));
    // L3 is charged at the L2 rate.
    EXPECT_DOUBLE_EQ(m.drainEnergyJ(0, 1024, 0),
                     m.drainEnergyJ(0, 0, 1024));
}

TEST(Energy, FootprintIsCubeFace)
{
    EXPECT_DOUBLE_EQ(DrainCostModel::footprintAreaMm2(27.0), 9.0);
    EXPECT_DOUBLE_EQ(DrainCostModel::footprintAreaMm2(1000.0), 100.0);
}

TEST(Energy, BatteryTechNames)
{
    EXPECT_STREQ(batteryTechName(BatteryTech::SuperCap), "SuperCap");
    EXPECT_STREQ(batteryTechName(BatteryTech::LiThin), "Li-thin");
}
