/**
 * @file
 * End-to-end smoke tests: a small system runs real threads, stores become
 * visible and (mode-dependently) durable, and crashes recover.
 */

#include <gtest/gtest.h>

#include "api/system.hh"
#include "workloads/workload.hh"

using namespace bbb;

namespace
{

SystemConfig
smallConfig(PersistMode mode, unsigned cores = 2)
{
    SystemConfig cfg;
    cfg.num_cores = cores;
    cfg.l1d.size_bytes = 8_KiB;
    cfg.llc.size_bytes = 64_KiB;
    cfg.dram.size_bytes = 64_MiB;
    cfg.nvmm.size_bytes = 64_MiB;
    cfg.mode = mode;
    return cfg;
}

} // namespace

TEST(Smoke, SingleStoreVisible)
{
    System sys(smallConfig(PersistMode::BbbMemSide, 1));
    Addr a = sys.heap().alloc(0, 64, 64);

    sys.onThread(0, [&](ThreadContext &tc) {
        tc.store64(a, 0xdeadbeefull);
        EXPECT_EQ(tc.load64(a), 0xdeadbeefull);
    });
    Tick end = sys.run();
    EXPECT_GT(end, 0u);
    EXPECT_EQ(sys.peek64(a), 0xdeadbeefull);
    sys.checkInvariants();
}

TEST(Smoke, CrossCoreVisibility)
{
    System sys(smallConfig(PersistMode::BbbMemSide, 2));
    Addr flag = sys.heap().alloc(0, 8);
    Addr data = sys.heap().alloc(0, 8);

    sys.onThread(0, [&](ThreadContext &tc) {
        tc.store64(data, 1234);
        tc.persistBarrier();
        tc.store64(flag, 1);
    });
    sys.onThread(1, [&](ThreadContext &tc) {
        // Spin until the flag is visible, then read the data.
        while (tc.load64(flag) == 0)
            tc.compute(50);
        EXPECT_EQ(tc.load64(data), 1234u);
    });
    sys.run();
    sys.checkInvariants();
}

TEST(Smoke, EveryModeRunsEveryWorkload)
{
    WorkloadParams p;
    p.ops_per_thread = 50;
    p.initial_elements = 100;
    p.array_elements = 1 << 12;

    for (PersistMode mode :
         {PersistMode::AdrPmem, PersistMode::AdrUnsafe, PersistMode::Eadr,
          PersistMode::BbbMemSide, PersistMode::BbbProcSide}) {
        for (const auto &name : workloadNames()) {
            SystemConfig cfg = smallConfig(mode, 2);
            System sys(cfg);
            auto wl = makeWorkload(name, p);
            wl->install(sys);
            Tick end = sys.run();
            EXPECT_GT(end, 0u) << name << " under " << persistModeName(mode);
            sys.checkInvariants();
        }
    }
}

TEST(Smoke, CompletedRunPersistsAfterCrash)
{
    // After the workload finishes and buffers settle... a crash at the end
    // must yield a fully consistent image in every safe mode.
    WorkloadParams p;
    p.ops_per_thread = 100;
    p.initial_elements = 50;

    for (PersistMode mode : {PersistMode::AdrPmem, PersistMode::Eadr,
                             PersistMode::BbbMemSide,
                             PersistMode::BbbProcSide}) {
        System sys(smallConfig(mode, 2));
        auto wl = makeWorkload("linkedlist", p);
        wl->install(sys);
        sys.run();
        CrashReport rep = sys.crashNow();
        (void)rep;
        auto res = wl->checkRecovery(sys.pmemImage());
        EXPECT_TRUE(res.consistent()) << persistModeName(mode);
        EXPECT_EQ(res.checked, 2 * (100u + 50u)) << persistModeName(mode);
    }
}

TEST(Smoke, MidRunCrashIsConsistentUnderBbb)
{
    WorkloadParams p;
    p.ops_per_thread = 400;
    p.initial_elements = 20;

    System sys(smallConfig(PersistMode::BbbMemSide, 2));
    auto wl = makeWorkload("linkedlist", p);
    wl->install(sys);
    CrashReport rep = sys.runAndCrashAt(nsToTicks(30000));
    EXPECT_GT(rep.bbpb_blocks + rep.wpq_blocks, 0u);
    auto res = wl->checkRecovery(sys.pmemImage());
    EXPECT_TRUE(res.consistent());
    EXPECT_GE(res.checked, 2 * 20u); // at least the prepared nodes
}

TEST(Smoke, MidRunCrashEventuallyTearsUnderUnsafeAdr)
{
    // Without flushes/fences on plain ADR the head pointer can reach NVMM
    // (by cache eviction) before the node it points to: Section II-A.
    WorkloadParams p;
    p.ops_per_thread = 4000;
    p.initial_elements = 0;

    SystemConfig cfg = smallConfig(PersistMode::AdrUnsafe, 2);
    cfg.l1d.size_bytes = 4_KiB; // small caches evict aggressively
    cfg.llc.size_bytes = 16_KiB;
    // Random replacement decorrelates writeback order from allocation
    // order, exposing the persist-ordering hazard quickly.
    cfg.l1d.repl = ReplPolicy::Random;
    cfg.llc.repl = ReplPolicy::Random;

    bool torn_seen = false;
    for (Tick t : {nsToTicks(20000), nsToTicks(50000), nsToTicks(100000),
                   nsToTicks(200000), nsToTicks(400000)}) {
        System sys(cfg);
        auto wl = makeWorkload("linkedlist", p);
        wl->install(sys);
        sys.runAndCrashAt(t);
        auto res = wl->checkRecovery(sys.pmemImage());
        if (!res.consistent())
            torn_seen = true;
    }
    EXPECT_TRUE(torn_seen);
}
