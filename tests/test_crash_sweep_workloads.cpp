/**
 * @file
 * Crash-point sweeps across every structured workload under BBB: the
 * recovery checker must find a consistent image at arbitrary crash
 * points, with live invariant validation sampled during the run.
 */

#include <gtest/gtest.h>

#include "api/system.hh"
#include "workloads/workload.hh"

using namespace bbb;

namespace
{

SystemConfig
sweepCfg()
{
    SystemConfig cfg;
    cfg.num_cores = 2;
    cfg.l1d.size_bytes = 4_KiB;
    cfg.llc.size_bytes = 16_KiB;
    cfg.dram.size_bytes = 64_MiB;
    cfg.nvmm.size_bytes = 64_MiB;
    cfg.mode = PersistMode::BbbMemSide;
    cfg.bbpb.entries = 8; // small buffer: more drains, more hazard
    // Random replacement decorrelates eviction order from insertion
    // order so crash points sample diverse machine states.
    cfg.l1d.repl = ReplPolicy::Random;
    cfg.llc.repl = ReplPolicy::Random;
    return cfg;
}

} // namespace

class WorkloadCrashSweep
    : public ::testing::TestWithParam<std::tuple<std::string, int>>
{
};

TEST_P(WorkloadCrashSweep, ImageConsistentAtArbitraryCrashPoints)
{
    auto [name, point] = GetParam();
    SystemConfig cfg = sweepCfg();
    System sys(cfg);

    WorkloadParams p;
    p.ops_per_thread = 1500;
    p.initial_elements = 200;
    p.array_elements = 1 << 12;
    auto wl = makeWorkload(name, p);
    wl->install(sys);

    // Sample the structural invariants while the machine is hot.
    for (int i = 1; i <= 4; ++i) {
        sys.eventQueue().schedule(nsToTicks(4000ull * point * i),
                                  [&]() { sys.checkInvariants(); });
    }

    sys.runAndCrashAt(nsToTicks(17000ull * point * point));
    RecoveryResult res = wl->checkRecovery(sys.pmemImage());
    EXPECT_EQ(res.torn, 0u) << name << " crash point " << point;
    EXPECT_EQ(res.dangling, 0u) << name << " crash point " << point;
    EXPECT_GT(res.checked, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Structures, WorkloadCrashSweep,
    ::testing::Combine(::testing::Values("hashmap", "ctree", "rtree",
                                         "btree", "rtree-spatial",
                                         "skiplist"),
                       ::testing::Range(1, 6)),
    [](const auto &param_info) {
        std::string name = std::get<0>(param_info.param);
        for (auto &ch : name) {
            if (ch == '-')
                ch = '_';
        }
        return name + "_p" + std::to_string(std::get<1>(param_info.param));
    });

TEST(WorkloadCrashSweepExtra, ProcSideSweepAlsoConsistent)
{
    for (int point = 1; point <= 4; ++point) {
        SystemConfig cfg = sweepCfg();
        cfg.mode = PersistMode::BbbProcSide;
        System sys(cfg);
        WorkloadParams p;
        p.ops_per_thread = 1000;
        p.initial_elements = 100;
        auto wl = makeWorkload("hashmap", p);
        wl->install(sys);
        sys.runAndCrashAt(nsToTicks(15000ull * point * point));
        RecoveryResult res = wl->checkRecovery(sys.pmemImage());
        EXPECT_TRUE(res.consistent()) << "point " << point;
    }
}

TEST(WorkloadCrashSweepExtra, DrainPoliciesSweepConsistent)
{
    for (DrainPolicy policy :
         {DrainPolicy::Fcfs, DrainPolicy::Lrw, DrainPolicy::Random}) {
        SystemConfig cfg = sweepCfg();
        cfg.bbpb.drain_policy = policy;
        System sys(cfg);
        WorkloadParams p;
        p.ops_per_thread = 1000;
        p.initial_elements = 100;
        auto wl = makeWorkload("ctree", p);
        wl->install(sys);
        sys.runAndCrashAt(nsToTicks(40000));
        RecoveryResult res = wl->checkRecovery(sys.pmemImage());
        EXPECT_TRUE(res.consistent()) << drainPolicyName(policy);
    }
}
