/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats.hh"

using namespace bbb;

TEST(StatCounter, IncrementAndAdd)
{
    StatCounter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    EXPECT_EQ(c.value(), 1u);
    c += 41;
    EXPECT_EQ(c.value(), 42u);
    c.set(7);
    EXPECT_EQ(c.value(), 7u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(StatAverage, MeanSumCount)
{
    StatAverage a;
    EXPECT_EQ(a.mean(), 0.0);
    a.sample(10);
    a.sample(20);
    a.sample(30);
    EXPECT_DOUBLE_EQ(a.mean(), 20.0);
    EXPECT_DOUBLE_EQ(a.sum(), 60.0);
    EXPECT_EQ(a.count(), 3u);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
}

TEST(StatHistogram, BucketsAndOverflow)
{
    StatHistogram h(4, 10); // [0,10) [10,20) [20,30) [30,40) + overflow
    h.sample(0);
    h.sample(9);
    h.sample(10);
    h.sample(35);
    h.sample(1000);
    EXPECT_EQ(h.samples(), 5u);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(2), 0u);
    EXPECT_EQ(h.bucketCount(3), 1u);
    EXPECT_EQ(h.bucketCount(4), 1u); // overflow
    EXPECT_EQ(h.maxSample(), 1000u);
    EXPECT_DOUBLE_EQ(h.mean(), (0 + 9 + 10 + 35 + 1000) / 5.0);
}

TEST(StatHistogram, Reset)
{
    StatHistogram h(4, 1);
    h.sample(2);
    h.reset();
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_EQ(h.bucketCount(2), 0u);
    EXPECT_EQ(h.maxSample(), 0u);
}

TEST(StatGroup, DumpContainsNamesAndValues)
{
    StatGroup g("mygroup");
    StatCounter c;
    c += 42;
    g.addCounter("answer", &c, "the answer");
    std::ostringstream os;
    g.dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("mygroup.answer"), std::string::npos);
    EXPECT_NE(out.find("42"), std::string::npos);
    EXPECT_NE(out.find("the answer"), std::string::npos);
}

TEST(StatGroup, CounterValueLookup)
{
    StatGroup g("g");
    StatCounter c;
    c += 5;
    g.addCounter("x", &c);
    EXPECT_EQ(g.counterValue("x"), 5u);
    EXPECT_EQ(g.counterValue("missing"), 0u);
}

TEST(StatGroup, ResetZeroesEverything)
{
    StatGroup g("g");
    StatCounter c;
    StatAverage a;
    StatHistogram h;
    c += 3;
    a.sample(1.5);
    h.sample(7);
    g.addCounter("c", &c);
    g.addAverage("a", &a);
    g.addHistogram("h", &h);
    g.reset();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(h.samples(), 0u);
}

TEST(StatRegistry, GroupCreatesOnce)
{
    StatRegistry reg;
    StatGroup &a = reg.group("one");
    StatGroup &b = reg.group("one");
    EXPECT_EQ(&a, &b);
}

TEST(StatRegistry, LookupAcrossGroups)
{
    StatRegistry reg;
    StatCounter c;
    c += 9;
    reg.group("alpha").addCounter("n", &c);
    EXPECT_EQ(reg.lookup("alpha", "n"), 9u);
    EXPECT_EQ(reg.lookup("alpha", "m"), 0u);
    EXPECT_EQ(reg.lookup("beta", "n"), 0u);
}

TEST(StatRegistry, DumpAllInRegistrationOrder)
{
    StatRegistry reg;
    StatCounter c1, c2;
    reg.group("zzz").addCounter("a", &c1);
    reg.group("aaa").addCounter("b", &c2);
    std::ostringstream os;
    reg.dumpAll(os);
    std::string out = os.str();
    EXPECT_LT(out.find("zzz.a"), out.find("aaa.b"));
}
