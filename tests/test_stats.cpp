/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats.hh"

using namespace bbb;

TEST(StatCounter, IncrementAndAdd)
{
    StatCounter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    EXPECT_EQ(c.value(), 1u);
    c += 41;
    EXPECT_EQ(c.value(), 42u);
    c.set(7);
    EXPECT_EQ(c.value(), 7u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(StatAverage, MeanSumCount)
{
    StatAverage a;
    EXPECT_EQ(a.mean(), 0.0);
    a.sample(10);
    a.sample(20);
    a.sample(30);
    EXPECT_DOUBLE_EQ(a.mean(), 20.0);
    EXPECT_DOUBLE_EQ(a.sum(), 60.0);
    EXPECT_EQ(a.count(), 3u);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
}

TEST(StatHistogram, BucketsAndOverflow)
{
    StatHistogram h(4, 10); // [0,10) [10,20) [20,30) [30,40) + overflow
    h.sample(0);
    h.sample(9);
    h.sample(10);
    h.sample(35);
    h.sample(1000);
    EXPECT_EQ(h.samples(), 5u);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(2), 0u);
    EXPECT_EQ(h.bucketCount(3), 1u);
    EXPECT_EQ(h.bucketCount(4), 1u); // overflow
    EXPECT_EQ(h.maxSample(), 1000u);
    EXPECT_DOUBLE_EQ(h.mean(), (0 + 9 + 10 + 35 + 1000) / 5.0);
}

TEST(StatHistogram, Reset)
{
    StatHistogram h(4, 1);
    h.sample(2);
    h.reset();
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_EQ(h.bucketCount(2), 0u);
    EXPECT_EQ(h.maxSample(), 0u);
}

TEST(StatGroup, DumpContainsNamesAndValues)
{
    StatGroup g("mygroup");
    StatCounter c;
    c += 42;
    g.addCounter("answer", &c, "the answer");
    std::ostringstream os;
    g.dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("mygroup.answer"), std::string::npos);
    EXPECT_NE(out.find("42"), std::string::npos);
    EXPECT_NE(out.find("the answer"), std::string::npos);
}

TEST(StatGroup, CounterValueLookup)
{
    StatGroup g("g");
    StatCounter c;
    c += 5;
    g.addCounter("x", &c);
    EXPECT_EQ(g.counterValue("x"), 5u);
    EXPECT_EQ(g.counterValue("missing"), 0u);
}

TEST(StatGroup, ResetZeroesEverything)
{
    StatGroup g("g");
    StatCounter c;
    StatAverage a;
    StatHistogram h;
    c += 3;
    a.sample(1.5);
    h.sample(7);
    g.addCounter("c", &c);
    g.addAverage("a", &a);
    g.addHistogram("h", &h);
    g.reset();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(h.samples(), 0u);
}

TEST(StatRegistry, DuplicateGroupNameIsFatal)
{
    StatRegistry reg;
    reg.group("one");
    EXPECT_EXIT(reg.group("one"), ::testing::ExitedWithCode(1),
                "registered twice");
}

TEST(StatRegistry, FindReturnsRegisteredGroup)
{
    StatRegistry reg;
    StatGroup &a = reg.group("one");
    EXPECT_EQ(reg.find("one"), &a);
    EXPECT_EQ(reg.find("two"), nullptr);
}

TEST(StatRegistry, LookupAcrossGroups)
{
    StatRegistry reg;
    StatCounter c;
    c += 9;
    reg.group("alpha").addCounter("n", &c);
    EXPECT_EQ(reg.lookup("alpha", "n"), 9u);
    EXPECT_EQ(reg.lookup("alpha", "m"), 0u);
    EXPECT_EQ(reg.lookup("beta", "n"), 0u);
}

TEST(StatRegistry, DumpAllInRegistrationOrder)
{
    StatRegistry reg;
    StatCounter c1, c2;
    reg.group("zzz").addCounter("a", &c1);
    reg.group("aaa").addCounter("b", &c2);
    std::ostringstream os;
    reg.dumpAll(os);
    std::string out = os.str();
    EXPECT_LT(out.find("zzz.a"), out.find("aaa.b"));
}

namespace
{

/** Records every visited name, fully qualified. */
struct NameCollector : StatVisitor
{
    std::vector<std::string> names;

    void
    counter(const std::string &n, const std::string &,
            const StatCounter &) override
    {
        names.push_back(n);
    }

    void
    average(const std::string &n, const std::string &,
            const StatAverage &) override
    {
        names.push_back(n);
    }

    void
    histogram(const std::string &n, const std::string &,
              const StatHistogram &) override
    {
        names.push_back(n);
    }
};

} // namespace

TEST(StatVisitor, VisitsEveryStatFullyQualified)
{
    StatRegistry reg;
    StatCounter c;
    StatAverage a;
    StatHistogram h(4, 10);
    StatGroup &g = reg.group("comp");
    g.addCounter("events", &c);
    g.addAverage("latency", &a);
    g.addHistogram("residency", &h);

    NameCollector v;
    reg.accept(v);
    ASSERT_EQ(v.names.size(), 3u);
    EXPECT_EQ(v.names[0], "comp.events");
    EXPECT_EQ(v.names[1], "comp.latency");
    EXPECT_EQ(v.names[2], "comp.residency");
}

TEST(StatRegistry, SnapshotExpandsEveryStatKind)
{
    StatRegistry reg;
    StatCounter c;
    c += 5;
    StatAverage a;
    a.sample(2.0);
    a.sample(4.0);
    StatHistogram h(4, 10);
    h.sample(9);   // bucket 0 upper edge
    h.sample(10);  // bucket 1 lower edge
    h.sample(39);  // last regular bucket's top value
    h.sample(40);  // first overflow value
    h.sample(999); // deep overflow
    StatGroup &g = reg.group("comp");
    g.addCounter("events", &c);
    g.addAverage("latency", &a);
    g.addHistogram("residency", &h);

    MetricSnapshot m = reg.snapshot(/*histogram_buckets=*/true);
    EXPECT_EQ(m.count("comp.events"), 5u);
    EXPECT_DOUBLE_EQ(m.real("comp.latency.sum"), 6.0);
    EXPECT_EQ(m.count("comp.latency.count"), 2u);
    EXPECT_EQ(m.count("comp.residency.samples"), 5u);
    EXPECT_EQ(m.count("comp.residency.sum"), 9u + 10 + 39 + 40 + 999);
    EXPECT_DOUBLE_EQ(m.real("comp.residency.max"), 999.0);
    // Boundary samples land on the correct side of each bucket edge,
    // and both overflow samples share the one overflow bucket.
    EXPECT_EQ(m.count("comp.residency.bucket0"), 1u);
    EXPECT_EQ(m.count("comp.residency.bucket1"), 1u);
    EXPECT_EQ(m.count("comp.residency.bucket2"), 0u);
    EXPECT_EQ(m.count("comp.residency.bucket3"), 1u);
    EXPECT_EQ(m.count("comp.residency.bucket4"), 2u);
    // Without buckets the per-bucket keys must not appear.
    MetricSnapshot flat = reg.snapshot();
    EXPECT_EQ(flat.find("comp.residency.bucket0"), nullptr);
    EXPECT_EQ(flat.count("comp.residency.samples"), 5u);
}

TEST(StatRegistry, SnapshotBucketKeysZeroPadded)
{
    // 12 regular buckets + overflow = 13 keys -> two digits, so the
    // sorted key order equals the bucket order.
    StatRegistry reg;
    StatHistogram h(12, 1);
    reg.group("g").addHistogram("h", &h);
    MetricSnapshot m = reg.snapshot(true);
    EXPECT_NE(m.find("g.h.bucket00"), nullptr);
    EXPECT_NE(m.find("g.h.bucket12"), nullptr);
    EXPECT_EQ(m.find("g.h.bucket0"), nullptr);
}

TEST(MetricSnapshot, FindCountRealAccessors)
{
    MetricSnapshot m;
    m.setCount("a.count", 7);
    m.setReal("a.real", 1.25);
    m.setLevel("a.level", 3.0);
    ASSERT_NE(m.find("a.count"), nullptr);
    EXPECT_EQ(m.find("a.count")->kind, MetricKind::Count);
    EXPECT_EQ(m.count("a.count"), 7u);
    EXPECT_DOUBLE_EQ(m.real("a.count"), 7.0);
    EXPECT_DOUBLE_EQ(m.real("a.real"), 1.25);
    EXPECT_DOUBLE_EQ(m.real("a.level"), 3.0);
    EXPECT_EQ(m.count("a.real"), 0u);  // not a Count
    EXPECT_EQ(m.find("missing"), nullptr);
    EXPECT_EQ(m.size(), 3u);
}

TEST(MetricSnapshot, DeltaPerKindSemantics)
{
    MetricSnapshot before, after;
    before.setCount("events", 10);
    after.setCount("events", 25);
    before.setReal("energy", 1.0);
    after.setReal("energy", 3.5);
    before.setLevel("occupancy", 9.0);
    after.setLevel("occupancy", 4.0);
    after.setCount("fresh", 2); // absent before -> counts from zero

    MetricSnapshot d = after.delta(before);
    EXPECT_EQ(d.count("events"), 15u);
    EXPECT_DOUBLE_EQ(d.real("energy"), 2.5);
    EXPECT_DOUBLE_EQ(d.real("occupancy"), 4.0); // level: keep newer
    EXPECT_EQ(d.count("fresh"), 2u);

    // Counts saturate at zero rather than wrapping.
    MetricSnapshot shrunk;
    shrunk.setCount("events", 3);
    EXPECT_EQ(shrunk.delta(after).count("events"), 0u);
}

TEST(MetricSnapshot, SnapshotDeltaResetRoundTrip)
{
    StatRegistry reg;
    StatCounter c;
    reg.group("g").addCounter("n", &c);
    c += 10;
    MetricSnapshot first = reg.snapshot();
    c += 7;
    MetricSnapshot second = reg.snapshot();
    EXPECT_EQ(second.delta(first).count("g.n"), 7u);

    MetricSnapshot d = second.delta(first);
    d.reset();
    EXPECT_TRUE(d.empty());

    reg.resetAll();
    EXPECT_EQ(reg.snapshot().count("g.n"), 0u);
}

TEST(MetricSnapshot, MergeWithPrefix)
{
    MetricSnapshot inner;
    inner.setCount("x", 1);
    inner.setReal("y", 2.0);
    MetricSnapshot outer;
    outer.setCount("kept", 9);
    outer.merge(inner, "sub");
    EXPECT_EQ(outer.count("kept"), 9u);
    EXPECT_EQ(outer.count("sub.x"), 1u);
    EXPECT_DOUBLE_EQ(outer.real("sub.y"), 2.0);
    // Empty prefix copies names unchanged.
    MetricSnapshot flat;
    flat.merge(inner);
    EXPECT_EQ(flat.count("x"), 1u);
}

TEST(MetricSnapshot, LeafShadowingRejected)
{
    MetricSnapshot m;
    m.setCount("a.b", 1);
    EXPECT_DEATH(m.setCount("a.b.c", 1), "");
    MetricSnapshot n;
    n.setCount("a.b.c", 1);
    EXPECT_DEATH(n.setCount("a.b", 1), "");
}

TEST(MetricSnapshot, JsonGoldenBytes)
{
    MetricSnapshot m;
    m.setCount("sys.ticks", 42);
    m.setReal("sys.energy_j", 1.5);
    m.setLevel("occupancy", 3.0);
    const char *expected = "{\n"
                           "  \"occupancy\": 3,\n"
                           "  \"sys\": {\n"
                           "    \"energy_j\": 1.5,\n"
                           "    \"ticks\": 42\n"
                           "  }\n"
                           "}";
    EXPECT_EQ(m.toJson(), expected);
    // Determinism: a second emission is byte-identical.
    EXPECT_EQ(m.toJson(), m.toJson());
}

TEST(MetricSnapshot, EmptyJsonIsEmptyObject)
{
    MetricSnapshot m;
    EXPECT_EQ(m.toJson(), "{}");
}

TEST(MetricSnapshot, CsvSortedRows)
{
    MetricSnapshot m;
    m.setCount("z", 1);
    m.setReal("a", 0.5);
    EXPECT_EQ(m.toCsv(), "metric,value\na,0.5\nz,1\n");
}
