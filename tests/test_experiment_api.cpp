/**
 * @file
 * Tests for the public API layer: the experiment harness, the System
 * facade, and the standard configurations.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "api/experiment.hh"
#include "api/system.hh"

using namespace bbb;

TEST(Configs, PaperConfigMatchesTableIII)
{
    SystemConfig cfg = paperConfig(PersistMode::BbbMemSide);
    EXPECT_EQ(cfg.num_cores, 8u);
    EXPECT_EQ(cfg.clock_mhz, 2000u);
    EXPECT_EQ(cfg.l1d.size_bytes, 128_KiB);
    EXPECT_EQ(cfg.l1d.assoc, 8u);
    EXPECT_EQ(cfg.l1d.latency_cycles, 2u);
    EXPECT_EQ(cfg.llc.size_bytes, 1_MiB);
    EXPECT_EQ(cfg.llc.assoc, 8u);
    EXPECT_EQ(cfg.llc.latency_cycles, 11u);
    EXPECT_EQ(cfg.nvmm.read_latency, nsToTicks(150));
    EXPECT_EQ(cfg.nvmm.write_latency, nsToTicks(500));
    EXPECT_EQ(cfg.dram.read_latency, nsToTicks(55));
    EXPECT_EQ(cfg.bbpb.entries, 32u);
    EXPECT_DOUBLE_EQ(cfg.bbpb.drain_threshold, 0.75);
}

TEST(Configs, PaperConfigHonorsOverrides)
{
    SystemConfig cfg = paperConfig(PersistMode::Eadr, 1024);
    EXPECT_EQ(cfg.mode, PersistMode::Eadr);
    EXPECT_EQ(cfg.bbpb.entries, 1024u);
}

TEST(Experiment, ProducesPopulatedMetrics)
{
    SystemConfig cfg = benchConfig(PersistMode::BbbMemSide, 32);
    cfg.num_cores = 2;
    WorkloadParams p;
    p.ops_per_thread = 100;
    p.initial_elements = 100;
    ExperimentResult r = runExperiment(cfg, "hashmap", p);

    EXPECT_EQ(r.workload, "hashmap");
    EXPECT_EQ(r.mode, PersistMode::BbbMemSide);
    EXPECT_EQ(r.bbpb_entries, 32u);
    EXPECT_GT(r.exec_ticks, 0u);
    EXPECT_GT(r.nvmm_writes, 0u);
    EXPECT_GT(r.stores, 0u);
    EXPECT_GT(r.persisting_stores, 0u);
    EXPECT_GT(r.bbpb_coalesces, 0u);
    EXPECT_GT(r.pStoreFraction(), 0.0);
    EXPECT_LE(r.pStoreFraction(), 1.0);
}

TEST(Experiment, ProcSideReportsFromProcGroup)
{
    SystemConfig cfg = benchConfig(PersistMode::BbbProcSide, 32);
    cfg.num_cores = 2;
    WorkloadParams p;
    p.ops_per_thread = 100;
    p.initial_elements = 50;
    ExperimentResult r = runExperiment(cfg, "linkedlist", p);
    EXPECT_GT(r.bbpb_drains + r.bbpb_forced_drains, 0u);
}

TEST(Experiment, EadrHasNoBbpbActivity)
{
    SystemConfig cfg = benchConfig(PersistMode::Eadr);
    cfg.num_cores = 2;
    WorkloadParams p;
    p.ops_per_thread = 100;
    p.initial_elements = 50;
    ExperimentResult r = runExperiment(cfg, "hashmap", p);
    EXPECT_EQ(r.bbpb_drains, 0u);
    EXPECT_EQ(r.bbpb_rejections, 0u);
    EXPECT_EQ(r.bbpb_coalesces, 0u);
}

TEST(System, EffectiveWritesCountsResidue)
{
    // A store that never leaves the cache still appears in the effective
    // count for eADR; for BBB it appears via the bbPB occupancy.
    for (PersistMode mode : {PersistMode::Eadr, PersistMode::BbbMemSide}) {
        SystemConfig cfg;
        cfg.num_cores = 1;
        cfg.dram.size_bytes = 64_MiB;
        cfg.nvmm.size_bytes = 64_MiB;
        cfg.mode = mode;
        cfg.bbpb.drain_threshold = 1.0;
        System sys(cfg);
        Addr a = sys.heap().alloc(0, 8);
        sys.onThread(0, [&](ThreadContext &tc) { tc.store64(a, 1); });
        sys.run();
        EXPECT_EQ(sys.nvmmWrites(), 0u) << persistModeName(mode);
        EXPECT_EQ(sys.effectiveNvmmWrites(), 1u) << persistModeName(mode);
    }
}

TEST(System, Peek64SeesCachedValue)
{
    SystemConfig cfg;
    cfg.num_cores = 1;
    cfg.dram.size_bytes = 64_MiB;
    cfg.nvmm.size_bytes = 64_MiB;
    System sys(cfg);
    Addr a = sys.heap().alloc(0, 8);
    sys.onThread(0, [&](ThreadContext &tc) { tc.store64(a, 0xbeef); });
    sys.run();
    EXPECT_EQ(sys.peek64(a), 0xbeefu);
    // Not necessarily in media yet; peek is architectural.
}

TEST(System, HeapMagicIsStamped)
{
    SystemConfig cfg;
    cfg.dram.size_bytes = 64_MiB;
    cfg.nvmm.size_bytes = 64_MiB;
    System sys(cfg);
    EXPECT_EQ(sys.image().read64(sys.heap().magicAddr()),
              PersistentHeap::kMagic);
}

TEST(System, StatsDumpIsNonEmptyAndNamespaced)
{
    SystemConfig cfg;
    cfg.num_cores = 1;
    cfg.dram.size_bytes = 64_MiB;
    cfg.nvmm.size_bytes = 64_MiB;
    System sys(cfg);
    sys.onThread(0, [&](ThreadContext &tc) { tc.compute(10); });
    sys.run();
    std::ostringstream os;
    sys.stats().dumpAll(os);
    std::string out = os.str();
    EXPECT_NE(out.find("hierarchy.loads"), std::string::npos);
    EXPECT_NE(out.find("nvmm.media_writes"), std::string::npos);
    EXPECT_NE(out.find("core0.ops"), std::string::npos);
}

TEST(System, RunWithoutThreadsTerminates)
{
    SystemConfig cfg;
    cfg.dram.size_bytes = 64_MiB;
    cfg.nvmm.size_bytes = 64_MiB;
    System sys(cfg);
    EXPECT_EQ(sys.run(), 0u);
}

TEST(System, ModeSelectsBackendKind)
{
    SystemConfig base;
    base.dram.size_bytes = 64_MiB;
    base.nvmm.size_bytes = 64_MiB;

    {
        SystemConfig cfg = base;
        cfg.mode = PersistMode::BbbMemSide;
        System sys(cfg);
        EXPECT_NE(sys.memSideBbpb(), nullptr);
        EXPECT_EQ(sys.procSideBbpb(), nullptr);
    }
    {
        SystemConfig cfg = base;
        cfg.mode = PersistMode::BbbProcSide;
        System sys(cfg);
        EXPECT_EQ(sys.memSideBbpb(), nullptr);
        EXPECT_NE(sys.procSideBbpb(), nullptr);
    }
    {
        SystemConfig cfg = base;
        cfg.mode = PersistMode::Eadr;
        System sys(cfg);
        EXPECT_EQ(sys.memSideBbpb(), nullptr);
        EXPECT_EQ(sys.procSideBbpb(), nullptr);
    }
}

TEST(SystemDeath, TooManyCoresRejected)
{
    SystemConfig cfg;
    cfg.num_cores = 65;
    EXPECT_DEATH({ System sys(cfg); }, "64");
}
