/**
 * @file
 * Unit tests for the sparse functional backing store.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "mem/backing_store.hh"

using namespace bbb;

TEST(BackingStore, ZeroInitialised)
{
    BackingStore s;
    unsigned char buf[16];
    std::memset(buf, 0xff, sizeof(buf));
    s.read(12345, buf, sizeof(buf));
    for (unsigned char b : buf)
        EXPECT_EQ(b, 0);
    EXPECT_EQ(s.pagesTouched(), 0u); // reads do not materialise pages
}

TEST(BackingStore, ReadBackWhatWasWritten)
{
    BackingStore s;
    const char msg[] = "battery-backed buffers";
    s.write(1000, msg, sizeof(msg));
    char out[sizeof(msg)];
    s.read(1000, out, sizeof(out));
    EXPECT_STREQ(out, msg);
}

TEST(BackingStore, WritesSpanPageBoundaries)
{
    BackingStore s;
    Addr addr = BackingStore::kPageSize - 8; // straddles two pages
    std::uint64_t vals[4] = {1, 2, 3, 4};
    s.write(addr, vals, sizeof(vals));
    std::uint64_t out[4];
    s.read(addr, out, sizeof(out));
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(out[i], vals[i]);
    EXPECT_EQ(s.pagesTouched(), 2u);
}

TEST(BackingStore, Scalar64Helpers)
{
    BackingStore s;
    s.write64(64, 0xdeadbeefcafef00dull);
    EXPECT_EQ(s.read64(64), 0xdeadbeefcafef00dull);
    EXPECT_EQ(s.read64(72), 0u);
}

TEST(BackingStore, BlockOps)
{
    BackingStore s;
    unsigned char block[kBlockSize];
    for (unsigned i = 0; i < kBlockSize; ++i)
        block[i] = static_cast<unsigned char>(i);
    s.writeBlock(128, block);
    unsigned char out[kBlockSize];
    s.readBlock(128, out);
    EXPECT_EQ(std::memcmp(block, out, kBlockSize), 0);
}

TEST(BackingStore, PartialOverwrite)
{
    BackingStore s;
    s.write64(0, 0x1111111111111111ull);
    std::uint32_t half = 0x22222222;
    s.write(0, &half, 4);
    EXPECT_EQ(s.read64(0), 0x1111111122222222ull);
}

TEST(BackingStore, CloneIsDeepCopy)
{
    BackingStore s;
    s.write64(100, 7);
    BackingStore copy = s.clone();
    s.write64(100, 9);
    EXPECT_EQ(copy.read64(100), 7u);
    EXPECT_EQ(s.read64(100), 9u);
}

TEST(BackingStore, ClearDropsContent)
{
    BackingStore s;
    s.write64(0, 5);
    s.clear();
    EXPECT_EQ(s.read64(0), 0u);
    EXPECT_EQ(s.pagesTouched(), 0u);
}

TEST(BackingStore, SparseHugeAddresses)
{
    BackingStore s;
    Addr far = 15_GiB;
    s.write64(far, 0xabcd);
    EXPECT_EQ(s.read64(far), 0xabcdu);
    EXPECT_EQ(s.pagesTouched(), 1u);
}

TEST(BackingStoreDeath, UnalignedBlockOpsPanic)
{
    BackingStore s;
    unsigned char buf[kBlockSize];
    EXPECT_DEATH(s.readBlock(3, buf), "unaligned");
    EXPECT_DEATH(s.writeBlock(65, buf), "unaligned");
}
