/**
 * @file
 * Unit tests for the discrete-event queue: temporal ordering, priority
 * buckets, FIFO tie-breaking, cancellation, and bounded runs.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

using namespace bbb;

TEST(EventQueue, StartsAtTickZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&]() { order.push_back(3); });
    eq.schedule(10, [&]() { order.push_back(1); });
    eq.schedule(20, [&]() { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickRespectsPriority)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&]() { order.push_back(2); }, EventPriority::CoreOp);
    eq.schedule(5, [&]() { order.push_back(1); },
                EventPriority::DrainComplete);
    eq.schedule(5, [&]() { order.push_back(3); }, EventPriority::Stats);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTickSamePriorityIsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(7, [&order, i]() { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, ScheduleInIsRelative)
{
    EventQueue eq;
    Tick seen = kMaxTick;
    eq.schedule(100, [&]() {
        eq.scheduleIn(50, [&]() { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 150u);
}

TEST(EventQueue, DescheduleCancelsEvent)
{
    EventQueue eq;
    bool fired = false;
    EventId id = eq.schedule(10, [&]() { fired = true; });
    eq.deschedule(id);
    eq.run();
    EXPECT_FALSE(fired);
}

TEST(EventQueue, PendingExcludesDescheduledEvents)
{
    EventQueue eq;
    EventId a = eq.schedule(10, []() {});
    eq.schedule(20, []() {});
    EXPECT_EQ(eq.pending(), 2u);
    eq.deschedule(a);
    EXPECT_EQ(eq.pending(), 1u);
    eq.deschedule(a); // double-deschedule must not decrement again
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, EmptyIgnoresCancelledResidue)
{
    EventQueue eq;
    EventId a = eq.schedule(10, []() {});
    EXPECT_FALSE(eq.empty());
    eq.deschedule(a);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, MassDescheduleDoesNotDisturbSurvivors)
{
    // Cancel enough events to trigger the internal compaction, then check
    // the survivors still run in FIFO order within a (tick, priority).
    EventQueue eq;
    std::vector<int> order;
    std::vector<EventId> doomed;
    for (int i = 0; i < 64; ++i) {
        if (i % 2 == 0) {
            doomed.push_back(
                eq.schedule(7, []() { FAIL() << "cancelled event fired"; }));
        } else {
            eq.schedule(7, [&order, i]() { order.push_back(i); });
        }
    }
    for (EventId id : doomed)
        eq.deschedule(id);
    EXPECT_EQ(eq.pending(), 32u);
    eq.run();
    ASSERT_EQ(order.size(), 32u);
    for (std::size_t i = 1; i < order.size(); ++i)
        EXPECT_LT(order[i - 1], order[i]);
}

TEST(EventQueue, DescheduleUnknownIdIsNoop)
{
    EventQueue eq;
    eq.schedule(10, []() {});
    eq.deschedule(12345); // never scheduled
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(eq.executed(), 1u);
}

TEST(EventQueue, DescheduleAfterFireIsSafe)
{
    EventQueue eq;
    EventId id = eq.schedule(10, []() {});
    eq.run();
    eq.deschedule(id); // must not crash or affect later events
    bool fired = false;
    eq.schedule(20, [&]() { fired = true; });
    eq.run();
    EXPECT_TRUE(fired);
}

TEST(EventQueue, RunStopsAtMaxTick)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(10, [&]() { ++count; });
    eq.schedule(20, [&]() { ++count; });
    eq.schedule(30, [&]() { ++count; });
    eq.run(20);
    EXPECT_EQ(count, 2);
    eq.run();
    EXPECT_EQ(count, 3);
}

TEST(EventQueue, StepExecutesOneEvent)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(1, [&]() { ++count; });
    eq.schedule(2, [&]() { ++count; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(count, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(count, 2);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, EventsScheduledDuringRunExecute)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&]() {
        if (++depth < 100)
            eq.scheduleIn(1, chain);
    };
    eq.scheduleIn(1, chain);
    eq.run();
    EXPECT_EQ(depth, 100);
    EXPECT_EQ(eq.now(), 100u);
}

TEST(EventQueue, ExecutedCounterCounts)
{
    EventQueue eq;
    for (int i = 0; i < 5; ++i)
        eq.schedule(static_cast<Tick>(i), []() {});
    eq.run();
    EXPECT_EQ(eq.executed(), 5u);
}

TEST(EventQueue, ZeroDelayEventRunsAtCurrentTick)
{
    EventQueue eq;
    Tick seen = kMaxTick;
    eq.schedule(42, [&]() {
        eq.scheduleIn(0, [&]() { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 42u);
}

TEST(EventQueueDeath, SchedulingInPastPanics)
{
    EventQueue eq;
    eq.schedule(100, []() {});
    eq.run();
    EXPECT_DEATH(eq.schedule(50, []() {}), "scheduling into the past");
}

TEST(EventQueue, LargeCaptureCallbacksWork)
{
    // Captures past SmallFn's inline buffer take the heap fallback; the
    // callback must still fire with its state intact.
    EventQueue eq;
    std::uint64_t a = 1, b = 2, c = 3, d = 4, e = 5, f = 6, g = 7, h = 8;
    std::uint64_t sum = 0;
    eq.schedule(1, [a, b, c, d, e, f, g, h, &sum]() {
        sum = a + b + c + d + e + f + g + h;
    });
    eq.run();
    EXPECT_EQ(sum, 36u);
}

// ---------------------------------------------------------------------
// Event-capacity hint sizing (SystemConfig::eventCapacityHint and the
// per-shard split it feeds). The hint exists so EventQueue::reserve can
// pre-size the heap once and never reallocate mid-run; the sharded
// kernel must not multiply the shared-component overhead per shard.
// ---------------------------------------------------------------------

#include "sim/config.hh"

TEST(EventCapacityHint, LegacyFormulaPreserved)
{
    bbb::SystemConfig cfg;
    cfg.num_cores = 8;
    std::size_t legacy = cfg.num_cores * (8 + cfg.store_buffer.entries) +
                         cfg.nvmm.wpq_entries + cfg.nvmm.channels +
                         cfg.dram.channels + 64;
    EXPECT_EQ(cfg.eventCapacityHint(), legacy);
    EXPECT_EQ(cfg.eventCapacityHint(cfg.num_cores, true), legacy);
}

TEST(EventCapacityHint, PerShardSplitSumsToGlobalHint)
{
    // Splitting N cores across shards — shared components only on the
    // queue that hosts them — must total exactly the monolithic hint:
    // no per-shard duplication of the wpq/channel/slack overhead.
    bbb::SystemConfig cfg;
    cfg.num_cores = 8;
    for (unsigned shards = 1; shards <= cfg.num_cores; ++shards) {
        cfg.shards = shards;
        std::size_t total = 0;
        for (unsigned s = 0; s < cfg.resolvedShards(); ++s) {
            unsigned cores_here = 0;
            for (unsigned c = 0; c < cfg.num_cores; ++c)
                if (cfg.shardOf(c) == s)
                    ++cores_here;
            total += cfg.eventCapacityHint(cores_here, s == 0);
        }
        EXPECT_EQ(total, cfg.eventCapacityHint())
            << "shards=" << shards;
    }
}

TEST(EventCapacityHint, CoreTermIsLinear)
{
    bbb::SystemConfig cfg;
    std::size_t one = cfg.eventCapacityHint(1, false);
    EXPECT_EQ(cfg.eventCapacityHint(4, false), 4 * one);
    EXPECT_EQ(cfg.eventCapacityHint(0, false), 0u);
    EXPECT_EQ(cfg.eventCapacityHint(0, true), cfg.sharedEventHint());
}

TEST(EventCapacityHint, ReserveHonorsHint)
{
    bbb::SystemConfig cfg;
    cfg.num_cores = 4;
    EventQueue eq;
    eq.reserve(cfg.eventCapacityHint());
    EXPECT_GE(eq.heapCapacity(), cfg.eventCapacityHint());
}
