/**
 * @file
 * Unit tests for the cache hierarchy: MESI transitions (the Table II
 * cases), data movement, inclusion, writebacks, flushes, and the
 * persistency hooks — observed through a recording backend.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "cache/hierarchy.hh"
#include "core/bbpb.hh"
#include "mem/addr_map.hh"
#include "mem/backing_store.hh"
#include "mem/mem_ctrl.hh"
#include "sim/config.hh"

using namespace bbb;

namespace
{

/** Backend that records every hook call and can simulate a bbPB. */
class RecordingBackend : public PersistencyBackend
{
  public:
    bool accept = true;
    bool skip_writeback = false;
    std::vector<std::pair<CoreId, Addr>> persists;
    std::vector<std::pair<CoreId, Addr>> invalidates;
    std::vector<Addr> forced;
    std::set<std::pair<CoreId, Addr>> held;

    bool canAcceptPersist(CoreId, Addr) override { return accept; }

    void
    persistStore(CoreId c, Addr addr, unsigned, const BlockData &) override
    {
        persists.emplace_back(c, blockAlign(addr));
        held.insert({c, blockAlign(addr)});
    }

    void
    onInvalidateForWrite(CoreId holder, Addr block) override
    {
        invalidates.emplace_back(holder, blockAlign(block));
        held.erase({holder, blockAlign(block)});
    }

    void
    onForcedDrain(Addr block, const BlockData &) override
    {
        forced.push_back(blockAlign(block));
        for (auto it = held.begin(); it != held.end();) {
            if (it->second == blockAlign(block))
                it = held.erase(it);
            else
                ++it;
        }
    }

    bool skipLlcWriteback(Addr) const override { return skip_writeback; }

    bool
    holds(CoreId c, Addr block) const override
    {
        return held.count({c, blockAlign(block)}) != 0;
    }

    CoreId
    holder(Addr block) const override
    {
        for (const auto &kv : held) {
            if (kv.second == blockAlign(block))
                return kv.first;
        }
        return kNoCore;
    }

    void
    forEachHeld(
        const std::function<void(CoreId, Addr)> &fn) const override
    {
        for (const auto &kv : held)
            fn(kv.first, kv.second);
    }

    std::size_t occupancy() const override { return held.size(); }
    void crashDrain(const PersistSink &) override {}
};

struct Rig
{
    SystemConfig cfg;
    AddrMap map;
    EventQueue eq;
    BackingStore store;
    DirectMedia dram_media{store};
    DirectMedia nvmm_media{store};
    StatRegistry stats;
    MemCtrl dram;
    MemCtrl nvmm;
    CacheHierarchy hier;
    RecordingBackend backend;

    explicit Rig(unsigned cores = 2)
        : cfg(makeCfg(cores)), map(AddrMap::fromConfig(cfg)),
          dram("dram", cfg.dram, eq, dram_media, stats),
          nvmm("nvmm", cfg.nvmm, eq, nvmm_media, stats),
          hier(cfg, map, eq, dram, nvmm, stats)
    {
        hier.setBackend(&backend);
    }

    static SystemConfig
    makeCfg(unsigned cores)
    {
        SystemConfig cfg;
        cfg.num_cores = cores;
        cfg.l1d.size_bytes = 4_KiB;
        cfg.l1d.assoc = 4;
        cfg.llc.size_bytes = 16_KiB;
        cfg.llc.assoc = 4;
        cfg.dram.size_bytes = 64_MiB;
        cfg.nvmm.size_bytes = 64_MiB;
        return cfg;
    }

    Addr
    persist(unsigned i = 0) const
    {
        return map.persistBase() + i * kBlockSize;
    }

    Addr
    volatileAddr(unsigned i = 0) const
    {
        return 4096 + i * kBlockSize;
    }

    std::uint64_t
    load64(CoreId c, Addr a)
    {
        std::uint64_t v = 0;
        hier.load(c, a, 8, &v);
        return v;
    }

    AccessResult
    store64(CoreId c, Addr a, std::uint64_t v)
    {
        return hier.store(c, a, 8, &v);
    }
};

} // namespace

TEST(Hierarchy, StoreThenLoadSameCore)
{
    Rig rig;
    rig.store64(0, rig.volatileAddr(), 77);
    EXPECT_EQ(rig.load64(0, rig.volatileAddr()), 77u);
    rig.hier.checkInvariants();
}

TEST(Hierarchy, StoreVisibleToOtherCore)
{
    Rig rig;
    rig.store64(0, rig.volatileAddr(), 88);
    EXPECT_EQ(rig.load64(1, rig.volatileAddr()), 88u);
    rig.hier.checkInvariants();
}

TEST(Hierarchy, LoadHitIsL1Latency)
{
    Rig rig;
    rig.load64(0, rig.volatileAddr()); // warm
    std::uint64_t v;
    AccessResult r = rig.hier.load(0, rig.volatileAddr(), 8, &v);
    EXPECT_EQ(r.latency, rig.cfg.cycles(rig.cfg.l1d.latency_cycles));
}

TEST(Hierarchy, ColdLoadPaysMemoryLatency)
{
    Rig rig;
    std::uint64_t v;
    AccessResult r = rig.hier.load(0, rig.persist(), 8, &v);
    EXPECT_GE(r.latency, rig.cfg.nvmm.read_latency);
}

TEST(Hierarchy, WriteMissToRemoteModified_Fig6a)
{
    // Table II row: remote invalidation of an M block held in a bbPB.
    Rig rig;
    rig.store64(0, rig.persist(), 1); // core 0: M + bbPB entry
    ASSERT_TRUE(rig.backend.holds(0, rig.persist()));

    rig.store64(1, rig.persist(), 2); // core 1 RdX
    // The entry moved without draining: invalidate hook fired for core 0,
    // then core 1's persistStore took ownership.
    ASSERT_EQ(rig.backend.invalidates.size(), 1u);
    EXPECT_EQ(rig.backend.invalidates[0],
              (std::pair<CoreId, Addr>{0u, rig.persist()}));
    EXPECT_FALSE(rig.backend.holds(0, rig.persist()));
    EXPECT_TRUE(rig.backend.holds(1, rig.persist()));
    EXPECT_TRUE(rig.backend.forced.empty());
    EXPECT_EQ(rig.load64(0, rig.persist()), 2u);
    rig.hier.checkInvariants();
}

TEST(Hierarchy, UpgradeFromShared_Fig6b)
{
    // Table II row: upgrade invalidates the S copy and removes the bbPB
    // entry without draining.
    Rig rig;
    rig.store64(0, rig.persist(), 1); // core 0 M + bbPB
    rig.load64(1, rig.persist());     // both cores S (downgrade core 0)
    rig.store64(1, rig.persist(), 2); // core 1 upgrade
    EXPECT_FALSE(rig.backend.holds(0, rig.persist()));
    EXPECT_TRUE(rig.backend.holds(1, rig.persist()));
    EXPECT_TRUE(rig.backend.forced.empty());
    EXPECT_EQ(rig.load64(0, rig.persist()), 2u);
    rig.hier.checkInvariants();
}

TEST(Hierarchy, InterventionKeepsBbpbEntry_Fig6c)
{
    // Table II row: a remote read downgrades M->S but the block *stays*
    // in the original bbPB and nothing drains.
    Rig rig;
    rig.store64(0, rig.persist(), 42);
    rig.load64(1, rig.persist());
    EXPECT_TRUE(rig.backend.holds(0, rig.persist()));
    EXPECT_TRUE(rig.backend.invalidates.empty());
    EXPECT_TRUE(rig.backend.forced.empty());
    EXPECT_EQ(rig.load64(1, rig.persist()), 42u);
    rig.hier.checkInvariants();
}

TEST(Hierarchy, PersistingStoreCallsBackendOnce)
{
    Rig rig;
    rig.store64(0, rig.persist(), 5);
    ASSERT_EQ(rig.backend.persists.size(), 1u);
    EXPECT_EQ(rig.backend.persists[0],
              (std::pair<CoreId, Addr>{0u, rig.persist()}));
}

TEST(Hierarchy, VolatileStoreSkipsBackend)
{
    Rig rig;
    rig.store64(0, rig.volatileAddr(), 5);
    EXPECT_TRUE(rig.backend.persists.empty());
}

TEST(Hierarchy, RejectedPersistLeavesNoTrace)
{
    Rig rig;
    rig.backend.accept = false;
    AccessResult r = rig.store64(0, rig.persist(), 5);
    EXPECT_EQ(r.status, StoreStatus::RetryPersist);
    EXPECT_TRUE(rig.backend.persists.empty());
    // No state was changed: the value is not visible.
    EXPECT_EQ(rig.load64(0, rig.persist()), 0u);
    rig.hier.checkInvariants();
}

TEST(Hierarchy, LlcEvictionForcesDrainOfHeldBlock)
{
    Rig rig(1);
    rig.store64(0, rig.persist(0), 1);
    ASSERT_TRUE(rig.backend.holds(0, rig.persist(0)));
    // Evict the LLC set by filling it with conflicting blocks.
    std::uint64_t sets = rig.cfg.llc.size_bytes /
                         (kBlockSize * rig.cfg.llc.assoc);
    for (unsigned i = 1; i <= rig.cfg.llc.assoc; ++i)
        rig.load64(0, rig.persist(0) + i * sets * kBlockSize);
    EXPECT_FALSE(rig.backend.holds(0, rig.persist(0)));
    ASSERT_GE(rig.backend.forced.size(), 1u);
    EXPECT_EQ(rig.backend.forced[0], rig.persist(0));
    rig.hier.checkInvariants();
}

TEST(Hierarchy, SkippedWritebackDropsDirtyPersistentVictim)
{
    // Use the real memory-side bbPB so the forced drain actually writes:
    // exactly one WPQ insert must happen (the drain), with the LLC
    // writeback skipped.
    SystemConfig cfg = Rig::makeCfg(1);
    cfg.mode = PersistMode::BbbMemSide;
    AddrMap map = AddrMap::fromConfig(cfg);
    EventQueue eq;
    BackingStore store;
    DirectMedia dram_media(store);
    DirectMedia nvmm_media(store);
    StatRegistry stats;
    MemCtrl dram("dram", cfg.dram, eq, dram_media, stats);
    MemCtrl nvmm("nvmm", cfg.nvmm, eq, nvmm_media, stats);
    CacheHierarchy hier(cfg, map, eq, dram, nvmm, stats);
    MemSideBbpb bbpb(cfg, eq, nvmm, stats);
    hier.setBackend(&bbpb);

    Addr p = map.persistBase();
    std::uint64_t v = 0x5157;
    hier.store(0, p, 8, &v);
    ASSERT_TRUE(bbpb.holds(0, p));

    std::uint64_t sets = cfg.llc.size_bytes / (kBlockSize * cfg.llc.assoc);
    for (unsigned i = 1; i <= cfg.llc.assoc; ++i) {
        std::uint64_t out;
        hier.load(0, p + i * sets * kBlockSize, 8, &out);
    }
    EXPECT_FALSE(bbpb.holds(0, p));
    EXPECT_EQ(stats.lookup("nvmm", "wpq_inserts"), 1u);
    EXPECT_EQ(stats.lookup("hierarchy", "skipped_writebacks"), 1u);
    eq.run();
    EXPECT_EQ(store.read64(p), 0x5157u);
}

TEST(Hierarchy, UnskippedWritebackReachesMemory)
{
    Rig rig(1);
    rig.backend.skip_writeback = false; // eADR/ADR behaviour
    rig.store64(0, rig.persist(0), 0x77);
    std::uint64_t sets = rig.cfg.llc.size_bytes /
                         (kBlockSize * rig.cfg.llc.assoc);
    for (unsigned i = 1; i <= rig.cfg.llc.assoc; ++i)
        rig.load64(0, rig.persist(0) + i * sets * kBlockSize);
    rig.eq.run();
    EXPECT_EQ(rig.store.read64(rig.persist(0)), 0x77u);
}

TEST(Hierarchy, L1EvictionWritesBackToLlcNotMemory)
{
    Rig rig(1);
    rig.store64(0, rig.volatileAddr(0), 9);
    // Conflict-evict from the 4-way L1 set.
    std::uint64_t l1_sets = rig.cfg.l1d.size_bytes /
                            (kBlockSize * rig.cfg.l1d.assoc);
    for (unsigned i = 1; i <= rig.cfg.l1d.assoc; ++i)
        rig.load64(0, rig.volatileAddr(0) + i * l1_sets * kBlockSize);
    EXPECT_GE(rig.stats.lookup("hierarchy", "l1_writebacks"), 1u);
    // Value still architecturally visible through the LLC.
    EXPECT_EQ(rig.load64(0, rig.volatileAddr(0)), 9u);
    rig.hier.checkInvariants();
}

TEST(Hierarchy, FlushPushesDirtyBlockToWpq)
{
    Rig rig(1);
    rig.store64(0, rig.persist(), 0xfeed);
    Tick lat = rig.hier.flushBlock(0, rig.persist());
    EXPECT_GT(lat, 0u);
    rig.eq.run();
    EXPECT_EQ(rig.store.read64(rig.persist()), 0xfeedu);
}

TEST(Hierarchy, FlushOfCleanBlockIsCheapNoop)
{
    Rig rig(1);
    std::uint64_t before = rig.stats.lookup("nvmm", "wpq_inserts");
    Tick lat = rig.hier.flushBlock(0, rig.persist(7));
    EXPECT_EQ(rig.stats.lookup("nvmm", "wpq_inserts"), before);
    EXPECT_LE(lat, rig.cfg.cycles(rig.cfg.llc.latency_cycles));
}

TEST(Hierarchy, PeekSeesFreshestCopy)
{
    Rig rig;
    rig.store64(0, rig.persist(), 123); // M in core 0's L1
    std::uint64_t v = 0;
    rig.hier.peek(rig.persist(), 8, &v);
    EXPECT_EQ(v, 123u);
}

TEST(Hierarchy, CollectDirtyNvmmFindsMAndLlcDirty)
{
    Rig rig;
    rig.store64(0, rig.persist(0), 1); // M in L1
    rig.store64(0, rig.persist(1), 2);
    std::uint64_t from_l1 = 0;
    auto dirty = rig.hier.collectDirtyNvmm(&from_l1);
    EXPECT_EQ(dirty.size(), 2u);
    EXPECT_EQ(from_l1, 2u);
}

TEST(Hierarchy, CollectDirtyIgnoresDram)
{
    Rig rig;
    rig.store64(0, rig.volatileAddr(), 1);
    auto dirty = rig.hier.collectDirtyNvmm();
    EXPECT_TRUE(dirty.empty());
}

TEST(Hierarchy, DirtyStatsCountLevels)
{
    Rig rig;
    rig.store64(0, rig.persist(0), 1);
    rig.load64(0, rig.persist(1));
    DirtyStats s = rig.hier.dirtyStats();
    EXPECT_EQ(s.l1_dirty_blocks, 1u);
    EXPECT_EQ(s.l1_valid_blocks, 2u);
    EXPECT_EQ(s.llc_valid_blocks, 2u);
    EXPECT_EQ(s.llc_dirty_blocks, 1u); // via the M owner
}

TEST(Hierarchy, ManyCoresPingPongStaysCoherent)
{
    Rig rig(4);
    Addr a = rig.persist();
    for (std::uint64_t round = 0; round < 40; ++round) {
        CoreId c = round % 4;
        rig.store64(c, a, round);
        for (CoreId r = 0; r < 4; ++r)
            EXPECT_EQ(rig.load64(r, a), round);
        rig.hier.checkInvariants();
    }
    // Block ended in exactly one bbPB (Invariant 4).
    unsigned holders = 0;
    for (CoreId c = 0; c < 4; ++c)
        holders += rig.backend.holds(c, a);
    EXPECT_EQ(holders, 1u);
}

TEST(Hierarchy, PartialStoresMergeWithinBlock)
{
    Rig rig(1);
    Addr a = rig.volatileAddr();
    std::uint32_t lo = 0x11111111, hi = 0x22222222;
    rig.hier.store(0, a, 4, &lo);
    rig.hier.store(0, a + 4, 4, &hi);
    EXPECT_EQ(rig.load64(0, a), 0x2222222211111111ull);
}

TEST(HierarchyDeath, CrossBlockAccessPanics)
{
    Rig rig(1);
    std::uint64_t v = 0;
    EXPECT_DEATH(rig.hier.load(0, 60, 8, &v), "crosses block");
    EXPECT_DEATH(rig.hier.store(0, 60, 8, &v), "crosses block");
}
