/**
 * @file
 * Tests for the parallel experiment runner: submission-ordered results,
 * bit-identical determinism between serial and pooled execution, and the
 * jobs=1 serial degenerate path.
 */

#include <gtest/gtest.h>

#include <vector>

#include "api/experiment.hh"

using namespace bbb;

namespace
{

WorkloadParams
tinyParams()
{
    WorkloadParams p;
    p.ops_per_thread = 60;
    p.initial_elements = 60;
    p.array_elements = 1ull << 12;
    return p;
}

SystemConfig
tinyConfig(PersistMode mode, unsigned entries = 32)
{
    SystemConfig cfg = benchConfig(mode, entries);
    cfg.num_cores = 2;
    return cfg;
}

/** Every ExperimentResult field, compared exactly. */
void
expectIdentical(const ExperimentResult &a, const ExperimentResult &b,
                const char *what)
{
    EXPECT_EQ(a.workload, b.workload) << what;
    EXPECT_EQ(a.mode, b.mode) << what;
    EXPECT_EQ(a.bbpb_entries, b.bbpb_entries) << what;
    EXPECT_EQ(a.exec_ticks, b.exec_ticks) << what;
    EXPECT_EQ(a.nvmm_writes, b.nvmm_writes) << what;
    EXPECT_EQ(a.bbpb_rejections, b.bbpb_rejections) << what;
    EXPECT_EQ(a.bbpb_drains, b.bbpb_drains) << what;
    EXPECT_EQ(a.bbpb_forced_drains, b.bbpb_forced_drains) << what;
    EXPECT_EQ(a.bbpb_coalesces, b.bbpb_coalesces) << what;
    EXPECT_EQ(a.bbpb_migrations, b.bbpb_migrations) << what;
    EXPECT_EQ(a.skipped_writebacks, b.skipped_writebacks) << what;
    EXPECT_EQ(a.stores, b.stores) << what;
    EXPECT_EQ(a.persisting_stores, b.persisting_stores) << what;
    EXPECT_EQ(a.stall_ticks, b.stall_ticks) << what;
    EXPECT_EQ(a.toCsv(), b.toCsv()) << what;
}

std::vector<ExperimentSpec>
sampleGrid()
{
    WorkloadParams p = tinyParams();
    return {
        {tinyConfig(PersistMode::BbbMemSide, 32), "hashmap", p},
        {tinyConfig(PersistMode::Eadr), "hashmap", p},
        {tinyConfig(PersistMode::BbbMemSide, 8), "linkedlist", p},
        {tinyConfig(PersistMode::BbbProcSide, 32), "mutateC", p},
        {tinyConfig(PersistMode::AdrPmem), "ctree", p},
        {tinyConfig(PersistMode::BbbMemSide, 32), "hashmap", p},
    };
}

} // namespace

TEST(ExperimentPool, ResolveJobsZeroMeansHardware)
{
    EXPECT_GE(resolveJobs(0), 1u);
    EXPECT_EQ(resolveJobs(3), 3u);
}

TEST(ExperimentPool, EmptyGridIsEmpty)
{
    EXPECT_TRUE(runExperiments({}, 4).empty());
    EXPECT_TRUE(runExperiments({}, 0).empty());
}

TEST(ExperimentPool, SerialRunsOfSamePointAreIdentical)
{
    // The premise of determinism: one (config, workload, seed) point run
    // twice serially produces bit-identical metrics.
    WorkloadParams p = tinyParams();
    SystemConfig cfg = tinyConfig(PersistMode::BbbMemSide, 32);
    ExperimentResult a = runExperiment(cfg, "hashmap", p);
    ExperimentResult b = runExperiment(cfg, "hashmap", p);
    expectIdentical(a, b, "serial rerun");
}

TEST(ExperimentPool, PoolMatchesSerialBitIdentically)
{
    std::vector<ExperimentSpec> specs = sampleGrid();

    std::vector<ExperimentResult> serial;
    for (const ExperimentSpec &s : specs)
        serial.push_back(runExperiment(s.cfg, s.workload, s.params));

    std::vector<ExperimentResult> pooled = runExperiments(specs, 4);
    ASSERT_EQ(pooled.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i)
        expectIdentical(serial[i], pooled[i], specs[i].workload.c_str());

    // Duplicate submissions land in their own slots, also identical.
    expectIdentical(pooled[0], pooled[5], "duplicate point");
}

TEST(ExperimentPool, JobsOneDegeneratesToSerial)
{
    std::vector<ExperimentSpec> specs = sampleGrid();
    specs.resize(3);

    std::vector<ExperimentResult> one = runExperiments(specs, 1);
    ASSERT_EQ(one.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        ExperimentResult direct =
            runExperiment(specs[i].cfg, specs[i].workload, specs[i].params);
        expectIdentical(direct, one[i], specs[i].workload.c_str());
    }
}

TEST(ExperimentPool, MoreJobsThanPointsIsFine)
{
    std::vector<ExperimentSpec> specs = sampleGrid();
    specs.resize(2);
    std::vector<ExperimentResult> r = runExperiments(specs, 16);
    ASSERT_EQ(r.size(), 2u);
    EXPECT_EQ(r[0].workload, "hashmap");
    EXPECT_EQ(r[1].workload, "hashmap");
    EXPECT_GT(r[0].exec_ticks, 0u);
}
