/**
 * @file
 * Unit tests for the crash engine: what each persistency mode drains on
 * failure, what survives, and what the drain costs.
 */

#include <gtest/gtest.h>

#include "api/system.hh"

using namespace bbb;

namespace
{

SystemConfig
smallCfg(PersistMode mode)
{
    SystemConfig cfg;
    cfg.num_cores = 2;
    cfg.l1d.size_bytes = 8_KiB;
    cfg.llc.size_bytes = 32_KiB;
    cfg.dram.size_bytes = 64_MiB;
    cfg.nvmm.size_bytes = 64_MiB;
    cfg.mode = mode;
    return cfg;
}

/** Run a thread that stores `n` values to persistent blocks, then crash
 *  immediately without letting buffers settle naturally. */
CrashReport
storeAndCrash(System &sys, unsigned n, Addr base)
{
    sys.onThread(0, [&, n](ThreadContext &tc) {
        for (unsigned i = 0; i < n; ++i)
            tc.store64(base + i * kBlockSize, i + 1);
    });
    sys.run();
    return sys.crashNow();
}

} // namespace

TEST(CrashEngine, AdrLosesCachedStores)
{
    System sys(smallCfg(PersistMode::AdrUnsafe));
    Addr base = sys.heap().alloc(0, 16 * kBlockSize, 64);
    CrashReport rep = storeAndCrash(sys, 4, base);
    EXPECT_EQ(rep.bbpb_blocks, 0u);
    EXPECT_EQ(rep.cache_blocks_l1 + rep.cache_blocks_llc, 0u);
    // Values never left the (lost) caches.
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_EQ(sys.pmemImage().read64(base + i * kBlockSize), 0u);
}

TEST(CrashEngine, EadrDrainsDirtyCaches)
{
    System sys(smallCfg(PersistMode::Eadr));
    Addr base = sys.heap().alloc(0, 16 * kBlockSize, 64);
    CrashReport rep = storeAndCrash(sys, 4, base);
    EXPECT_EQ(rep.cache_blocks_l1 + rep.cache_blocks_llc, 4u);
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_EQ(sys.pmemImage().read64(base + i * kBlockSize), i + 1);
}

TEST(CrashEngine, BbbDrainsBbpbEntries)
{
    SystemConfig cfg = smallCfg(PersistMode::BbbMemSide);
    cfg.bbpb.entries = 16;
    cfg.bbpb.drain_threshold = 1.0; // keep everything buffered
    System sys(cfg);
    Addr base = sys.heap().alloc(0, 16 * kBlockSize, 64);
    CrashReport rep = storeAndCrash(sys, 4, base);
    EXPECT_EQ(rep.bbpb_blocks, 4u);
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_EQ(sys.pmemImage().read64(base + i * kBlockSize), i + 1);
}

TEST(CrashEngine, WpqAlwaysDrains)
{
    // Even plain ADR persists whatever reached the WPQ: flush then crash
    // before retirement is still durable.
    System sys(smallCfg(PersistMode::AdrPmem));
    Addr a = sys.heap().alloc(0, 8);
    sys.onThread(0, [&](ThreadContext &tc) {
        tc.store64(a, 0xcafe);
        tc.writeBack(a);
        tc.persistBarrier();
    });
    // Stop the instant the thread finishes: the WPQ may not have retired.
    for (CoreId c = 0; c < sys.numCores(); ++c)
        sys.core(c).start();
    while (!sys.core(0).finished() && sys.eventQueue().step()) {
    }
    CrashReport rep = sys.crashNow();
    (void)rep;
    EXPECT_EQ(sys.pmemImage().read64(a), 0xcafeu);
}

TEST(CrashEngine, BatteryBackedSbDrainsInProgramOrder)
{
    SystemConfig cfg = smallCfg(PersistMode::BbbMemSide);
    cfg.relaxed_consistency = true; // battery-backed SB (Section III-C)
    System sys(cfg);
    Addr a = sys.heap().alloc(0, 2 * kBlockSize, 64);
    sys.onThread(0, [&](ThreadContext &tc) {
        tc.store64(a, 1);
        tc.store64(a + kBlockSize, 2);
    });
    // Crash at once: stores may still sit in the store buffer.
    for (CoreId c = 0; c < sys.numCores(); ++c)
        sys.core(c).start();
    while (!sys.core(0).finished() && sys.eventQueue().step()) {
    }
    CrashReport rep = sys.crashNow();
    (void)rep;
    EXPECT_EQ(sys.pmemImage().read64(a), 1u);
    EXPECT_EQ(sys.pmemImage().read64(a + kBlockSize), 2u);
}

TEST(CrashEngine, VolatileSbEntriesAreLostWithoutBattery)
{
    SystemConfig cfg = smallCfg(PersistMode::BbbMemSide);
    cfg.relaxed_consistency = false; // TSO: no battery-backed SB needed
    cfg.store_buffer.entries = 32;
    System sys(cfg);
    Addr a = sys.heap().alloc(0, 8);
    // Crash at tick 0-ish: the store cannot have left the SB.
    sys.onThread(0, [&](ThreadContext &tc) { tc.store64(a, 7); });
    CrashReport rep = sys.runAndCrashAt(sys.config().cycles(2));
    EXPECT_EQ(rep.sb_entries, 0u);
}

TEST(CrashEngine, ReportsDrainCosts)
{
    SystemConfig cfg = smallCfg(PersistMode::BbbMemSide);
    cfg.bbpb.drain_threshold = 1.0;
    System sys(cfg);
    Addr base = sys.heap().alloc(0, 16 * kBlockSize, 64);
    CrashReport rep = storeAndCrash(sys, 4, base);
    EXPECT_EQ(rep.mode, PersistMode::BbbMemSide);
    EXPECT_GE(rep.drained_bytes, 4 * kBlockSize);
    EXPECT_GT(rep.drain_energy_j, 0.0);
    EXPECT_GT(rep.drain_time_s, 0.0);
    // BBB's drain energy must be tiny: well under a millijoule here.
    EXPECT_LT(rep.drain_energy_j, 1e-3);
}

TEST(CrashEngine, EadrDrainCostExceedsBbb)
{
    auto run = [&](PersistMode mode) {
        SystemConfig cfg = smallCfg(mode);
        cfg.bbpb.drain_threshold = 1.0;
        System sys(cfg);
        Addr base = sys.heap().alloc(0, 512 * kBlockSize, 64);
        return storeAndCrash(sys, 200, base).drain_energy_j;
    };
    double eadr = run(PersistMode::Eadr);
    double bbb = run(PersistMode::BbbMemSide);
    EXPECT_GT(eadr, bbb);
}

TEST(CrashEngine, SecondCrashPanics)
{
    System sys(smallCfg(PersistMode::Eadr));
    sys.onThread(0, [](ThreadContext &tc) { tc.compute(1); });
    sys.run();
    sys.crashNow();
    EXPECT_DEATH(sys.crashNow(), "already crashed");
}
