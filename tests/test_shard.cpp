/**
 * @file
 * Unit tests for the sharded event kernel: the ShardRuntime mailbox
 * protocol (program-order FIFO, load-resume delivery, backpressure,
 * finish detection) and the System-level determinism contract — any
 * `--shards` width must produce byte-identical canonical results.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "api/system.hh"
#include "sim/fiber.hh"
#include "sim/shard.hh"
#include "workloads/workload.hh"

using namespace bbb;

namespace
{

/** Scope guard: force canonical-report mode, restore on exit. */
struct CanonicalGuard
{
    CanonicalGuard()
    {
        const char *prev = std::getenv("BBB_REPORT_CANONICAL");
        if (prev) {
            _saved = prev;
            _had = true;
        }
        setenv("BBB_REPORT_CANONICAL", "1", 1);
    }
    ~CanonicalGuard()
    {
        if (_had)
            setenv("BBB_REPORT_CANONICAL", _saved.c_str(), 1);
        else
            unsetenv("BBB_REPORT_CANONICAL");
    }

  private:
    std::string _saved;
    bool _had = false;
};

/** Two-core machine whose core 1 lives on worker shard 1. */
SystemConfig
twoShardCfg()
{
    SystemConfig cfg;
    cfg.num_cores = 2;
    cfg.shards = 2;
    return cfg;
}

} // namespace

TEST(ShardRuntime, MailboxKeepsProgramOrderAndDeliversLoadResults)
{
    SystemConfig cfg = twoShardCfg();
    cfg.shard_mailbox_entries = 4; // tiny: force NeedSpace parking
    constexpr std::uint64_t kStores = 32;

    std::unique_ptr<ShardRuntime> rt;
    std::vector<std::uint64_t> load_results;
    // The fiber (worker side) floods the mailbox with stores, then
    // issues one load and finishes. Declared before the runtime so the
    // runtime — which joins its worker threads in its destructor — dies
    // first.
    Fiber fiber([&]() {
        for (std::uint64_t i = 0; i < kStores; ++i) {
            MemOp op;
            op.kind = OpKind::Store;
            op.addr = 64 * i;
            op.size = 8;
            op.data = i;
            // Non-loads commit asynchronously: produceOp returns 0.
            EXPECT_EQ(rt->produceOp(1, op), 0u);
        }
        MemOp ld;
        ld.kind = OpKind::Load;
        ld.addr = 128;
        ld.size = 8;
        load_results.push_back(rt->produceOp(1, ld));
    });

    rt = std::make_unique<ShardRuntime>(cfg);
    ASSERT_EQ(rt->shards(), 2u);
    rt->addCore(1, &fiber);
    rt->start();
    rt->kick(1);

    // Commit side: ops must arrive in exact program order even though
    // the producer parked on the full mailbox many times.
    MemOp op;
    for (std::uint64_t i = 0; i < kStores; ++i) {
        ASSERT_TRUE(rt->popOp(1, op)) << "store " << i;
        EXPECT_EQ(op.kind, OpKind::Store);
        EXPECT_EQ(op.addr, 64 * i);
        EXPECT_EQ(op.data, i);
    }
    ASSERT_TRUE(rt->popOp(1, op));
    EXPECT_EQ(op.kind, OpKind::Load);

    // Deliver the load result; the fiber resumes at simulated tick 1234,
    // finishes, and the next pop reports the drained-and-done state.
    rt->sendResume(1, 0xfeedfaceull, 1234);
    EXPECT_FALSE(rt->popOp(1, op));
    ASSERT_EQ(load_results.size(), 1u);
    EXPECT_EQ(load_results[0], 0xfeedfaceull);
    EXPECT_EQ(rt->segmentNow(1), 1234u);
    rt->quiesce(); // idempotent with the finished fiber
}

TEST(ShardRuntime, QuiesceHaltsAnUnfinishedProducer)
{
    SystemConfig cfg = twoShardCfg();
    cfg.shard_mailbox_entries = 2;

    std::unique_ptr<ShardRuntime> rt;
    // Endless producer: can only stop by being halted mid-produce.
    Fiber fiber([&]() {
        for (std::uint64_t i = 0;; ++i) {
            MemOp op;
            op.kind = OpKind::Store;
            op.addr = 64 * i;
            op.size = 8;
            rt->produceOp(1, op);
        }
    });

    rt = std::make_unique<ShardRuntime>(cfg);
    rt->addCore(1, &fiber);
    rt->start();
    rt->kick(1);

    // Drain a few ops so the worker is demonstrably running.
    MemOp op;
    for (int i = 0; i < 5; ++i)
        ASSERT_TRUE(rt->popOp(1, op));

    // A crash freezes the workers; quiesce must return even though the
    // fiber never finishes (it parks permanently, like an inline fiber
    // abandoned at a crash).
    rt->quiesce();
}

namespace
{

/** One full hashmap run at the given shard width; canonical JSON. */
std::string
canonicalRunJson(unsigned shards)
{
    SystemConfig cfg;
    cfg.num_cores = 4;
    cfg.shards = shards;
    cfg.l1d.size_bytes = 4_KiB;
    cfg.llc.size_bytes = 16_KiB;
    cfg.dram.size_bytes = 64_MiB;
    cfg.nvmm.size_bytes = 64_MiB;
    cfg.bbpb.entries = 8;

    WorkloadParams params;
    params.ops_per_thread = 150;
    params.initial_elements = 60;
    params.array_elements = 1 << 12;

    System sys(cfg);
    auto wl = makeWorkload("hashmap", params);
    wl->install(sys);
    sys.run();
    return sys.snapshotMetrics().toJson();
}

} // namespace

TEST(ShardSystem, CanonicalSnapshotsByteIdenticalAcrossWidths)
{
    CanonicalGuard canonical;
    std::string one = canonicalRunJson(1);
    EXPECT_EQ(one, canonicalRunJson(2));
    EXPECT_EQ(one, canonicalRunJson(3));
    EXPECT_EQ(one, canonicalRunJson(4));
    // Widths beyond the core count clamp to it.
    EXPECT_EQ(one, canonicalRunJson(8));
}

TEST(ShardSystem, CrashAndRecoveryIdenticalAcrossWidths)
{
    CanonicalGuard canonical;
    auto crashRun = [](unsigned shards) {
        SystemConfig cfg;
        cfg.num_cores = 2;
        cfg.shards = shards;
        cfg.l1d.size_bytes = 4_KiB;
        cfg.llc.size_bytes = 16_KiB;
        cfg.dram.size_bytes = 64_MiB;
        cfg.nvmm.size_bytes = 64_MiB;
        cfg.bbpb.entries = 8;

        WorkloadParams params;
        params.ops_per_thread = 400;
        params.initial_elements = 100;
        params.array_elements = 1 << 12;

        System sys(cfg);
        auto wl = makeWorkload("hashmap", params);
        wl->install(sys);
        CrashReport rep = sys.runAndCrashAt(nsToTicks(30000));
        RecoveryResult res = wl->verifyImage(sys.pmemImage());

        struct Out
        {
            std::string json;
            std::uint64_t drained;
            std::uint64_t intact;
            std::uint64_t torn;
            bool consistent;
        } out;
        out.json = sys.snapshotMetrics().toJson();
        out.drained = rep.wpq_blocks + rep.bbpb_blocks +
                      rep.cache_blocks_l1 + rep.cache_blocks_llc;
        out.intact = res.intact;
        out.torn = res.torn;
        out.consistent = res.consistent();
        return out;
    };

    auto base = crashRun(1);
    auto wide = crashRun(2);
    EXPECT_EQ(base.json, wide.json);
    EXPECT_EQ(base.drained, wide.drained);
    EXPECT_EQ(base.intact, wide.intact);
    EXPECT_EQ(base.torn, wide.torn);
    EXPECT_EQ(base.consistent, wide.consistent);
    EXPECT_TRUE(base.consistent);
}
