/**
 * @file
 * Edge-case and stress tests: WPQ saturation, eviction storms under tiny
 * caches, flush semantics corner cases, CSV export, and heap-pressure
 * behaviour.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "api/experiment.hh"
#include "api/system.hh"
#include "workloads/workload.hh"

using namespace bbb;

namespace
{

SystemConfig
tinyCfg(PersistMode mode)
{
    SystemConfig cfg;
    cfg.num_cores = 2;
    cfg.l1d.size_bytes = 1_KiB;
    cfg.l1d.assoc = 2;
    cfg.llc.size_bytes = 4_KiB;
    cfg.llc.assoc = 2;
    cfg.dram.size_bytes = 64_MiB;
    cfg.nvmm.size_bytes = 64_MiB;
    cfg.mode = mode;
    return cfg;
}

} // namespace

TEST(Stress, TinyWpqNeverLosesData)
{
    SystemConfig cfg = tinyCfg(PersistMode::BbbMemSide);
    cfg.nvmm.wpq_entries = 2; // pathological WPQ
    cfg.bbpb.entries = 4;
    System sys(cfg);
    Addr base = sys.heap().alloc(0, 256 * kBlockSize, 64);
    sys.onThread(0, [&](ThreadContext &tc) {
        for (unsigned i = 0; i < 256; ++i)
            tc.store64(base + i * kBlockSize, i + 1);
    });
    sys.run();
    sys.crashNow();
    for (unsigned i = 0; i < 256; ++i)
        EXPECT_EQ(sys.pmemImage().read64(base + i * kBlockSize), i + 1);
}

TEST(Stress, EvictionStormKeepsEveryModeCorrect)
{
    for (PersistMode mode :
         {PersistMode::AdrUnsafe, PersistMode::Eadr,
          PersistMode::BbbMemSide, PersistMode::BbbProcSide}) {
        SystemConfig cfg = tinyCfg(mode);
        System sys(cfg);
        // Working set 64x the LLC: constant eviction.
        Addr base = sys.heap().alloc(0, 4096 * 8, 64);
        sys.onThread(0, [&](ThreadContext &tc) {
            for (int round = 0; round < 3; ++round) {
                for (unsigned i = 0; i < 4096; ++i)
                    tc.store64(base + i * 8, (round << 16) | i);
            }
            // Architectural check through the same machine.
            for (unsigned i = 0; i < 4096; i += 97)
                EXPECT_EQ(tc.load64(base + i * 8), (2u << 16) | i)
                    << persistModeName(mode);
        });
        sys.run();
        sys.checkInvariants();
    }
}

TEST(Stress, SharedHotBlockUnderAllModes)
{
    // Every core hammers one block: maximal migration/intervention load.
    for (PersistMode mode :
         {PersistMode::Eadr, PersistMode::BbbMemSide,
          PersistMode::BbbProcSide}) {
        SystemConfig cfg = tinyCfg(mode);
        cfg.num_cores = 4;
        System sys(cfg);
        Addr a = sys.heap().alloc(0, 8);
        for (CoreId t = 0; t < 4; ++t) {
            sys.onThread(t, [&, t](ThreadContext &tc) {
                for (int i = 0; i < 500; ++i) {
                    tc.store64(a, (static_cast<std::uint64_t>(t) << 32) | i);
                    tc.load64(a);
                }
            });
        }
        sys.run();
        sys.checkInvariants();
        sys.crashNow();
        // The persisted value is one of the last writes: its writer tag
        // must decode to a real core.
        std::uint64_t v = sys.pmemImage().read64(a);
        EXPECT_LT(v >> 32, 4u) << persistModeName(mode);
    }
}

TEST(FlushSemantics, FlushOfRemoteModifiedBlockPersists)
{
    SystemConfig cfg = tinyCfg(PersistMode::AdrPmem);
    System sys(cfg);
    Addr a = sys.heap().alloc(0, 8);
    sys.onThread(0, [&](ThreadContext &tc) {
        tc.store64(a, 0x111);
        tc.compute(1000); // let it settle into core 0's L1 as M
    });
    sys.onThread(1, [&](ThreadContext &tc) {
        tc.compute(2000);
        // Core 1 flushes a block core 0 modified: the freshest copy must
        // be the one that reaches the WPQ.
        tc.writeBack(a);
        tc.persistBarrier();
    });
    sys.run();
    sys.crashNow();
    EXPECT_EQ(sys.pmemImage().read64(a), 0x111u);
}

TEST(FlushSemantics, DoubleFlushIsIdempotent)
{
    SystemConfig cfg = tinyCfg(PersistMode::AdrPmem);
    System sys(cfg);
    Addr a = sys.heap().alloc(0, 8);
    sys.onThread(0, [&](ThreadContext &tc) {
        tc.store64(a, 7);
        tc.writeBack(a);
        tc.persistBarrier();
        tc.writeBack(a); // clean now: cheap no-op
        tc.persistBarrier();
    });
    sys.run();
    sys.crashNow();
    EXPECT_EQ(sys.pmemImage().read64(a), 7u);
}

TEST(FlushSemantics, AsyncFlushesOverlapUntilFence)
{
    // N flushes then one fence must be much cheaper than N
    // flush+fence pairs (clwb pipelining).
    SystemConfig cfg = tinyCfg(PersistMode::AdrPmem);
    auto run = [&](bool fence_each) {
        System sys(cfg);
        Addr base = sys.heap().alloc(0, 16 * kBlockSize, 64);
        sys.onThread(0, [&, fence_each](ThreadContext &tc) {
            for (unsigned i = 0; i < 16; ++i)
                tc.store64(base + i * kBlockSize, i);
            for (unsigned i = 0; i < 16; ++i) {
                tc.writeBack(base + i * kBlockSize);
                if (fence_each)
                    tc.persistBarrier();
            }
            tc.persistBarrier();
        });
        sys.run();
        return sys.executionTime();
    };
    Tick batched = run(false);
    Tick serial = run(true);
    EXPECT_LT(batched, serial);
}

TEST(Csv, HeaderAndRowAgree)
{
    ExperimentResult r;
    r.workload = "hashmap";
    r.mode = PersistMode::BbbMemSide;
    r.bbpb_entries = 32;
    r.exec_ticks = 1000;
    r.nvmm_writes = 5;
    std::string header = ExperimentResult::csvHeader();
    std::string row = r.toCsv();
    auto commas = [](const std::string &s) {
        return std::count(s.begin(), s.end(), ',');
    };
    EXPECT_EQ(commas(header), commas(row));
    EXPECT_NE(row.find("hashmap,bbb-mem-side,32,"), std::string::npos);
}

TEST(Stress, ManyFibersManyCores)
{
    SystemConfig cfg = tinyCfg(PersistMode::BbbMemSide);
    cfg.num_cores = 16;
    System sys(cfg);
    std::uint64_t done = 0;
    for (CoreId t = 0; t < 16; ++t) {
        sys.onThread(t, [&, t](ThreadContext &tc) {
            Addr a = sys.heap().alloc(t, 64, 64);
            for (int i = 0; i < 100; ++i) {
                tc.store64(a, i);
                tc.compute(tc.rng().below(20));
            }
            ++done;
        });
    }
    sys.run();
    EXPECT_EQ(done, 16u);
    sys.checkInvariants();
}

TEST(Stress, ZeroOpWorkloadsAreHarmless)
{
    System sys(tinyCfg(PersistMode::BbbMemSide));
    WorkloadParams p;
    p.ops_per_thread = 0;
    p.initial_elements = 10;
    auto wl = makeWorkload("hashmap", p);
    wl->install(sys);
    sys.run();
    sys.crashNow();
    RecoveryResult res = wl->checkRecovery(sys.pmemImage());
    EXPECT_TRUE(res.consistent());
    EXPECT_EQ(res.checked, 2 * 10u);
}
