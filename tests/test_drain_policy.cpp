/**
 * @file
 * Tests for the drain-policy variants (Section III-F future work) and the
 * Section III-C store-buffer battery requirement.
 */

#include <gtest/gtest.h>

#include "api/system.hh"
#include "core/bbpb.hh"
#include "workloads/linkedlist.hh"

using namespace bbb;

namespace
{

struct Rig
{
    SystemConfig cfg;
    EventQueue eq;
    BackingStore store;
    DirectMedia media{store};
    StatRegistry stats;
    MemCtrl nvmm;

    explicit Rig(DrainPolicy policy, unsigned entries = 4)
        : cfg(makeCfg(policy, entries)),
          nvmm("nvmm", cfg.nvmm, eq, media, stats)
    {
    }

    static SystemConfig
    makeCfg(DrainPolicy policy, unsigned entries)
    {
        SystemConfig cfg;
        cfg.num_cores = 1;
        cfg.bbpb.entries = entries;
        cfg.bbpb.drain_threshold = 0.75;
        cfg.bbpb.drain_policy = policy;
        return cfg;
    }
};

BlockData
pattern(unsigned char v)
{
    BlockData d;
    d.bytes.fill(v);
    return d;
}

constexpr Addr kBase = 1_GiB;

Addr
blk(unsigned i)
{
    return kBase + i * kBlockSize;
}

} // namespace

TEST(DrainPolicy, Names)
{
    EXPECT_STREQ(drainPolicyName(DrainPolicy::Fcfs), "fcfs");
    EXPECT_STREQ(drainPolicyName(DrainPolicy::Lrw), "lrw");
    EXPECT_STREQ(drainPolicyName(DrainPolicy::Random), "random");
}

TEST(DrainPolicy, LrwKeepsWriteHotEntry)
{
    Rig rig(DrainPolicy::Lrw);
    MemSideBbpb bbpb(rig.cfg, rig.eq, rig.nvmm, rig.stats);
    bbpb.persistStore(0, blk(0), 8, pattern(1)); // oldest alloc ...
    bbpb.persistStore(0, blk(1), 8, pattern(2));
    bbpb.persistStore(0, blk(0), 8, pattern(3)); // ... but re-written
    bbpb.persistStore(0, blk(2), 8, pattern(4)); // trips threshold (3)
    rig.eq.run();
    // FCFS would drain blk(0); LRW drains blk(1), the coldest writer.
    EXPECT_TRUE(bbpb.holds(0, blk(0)));
    EXPECT_FALSE(bbpb.holds(0, blk(1)));
}

TEST(DrainPolicy, FcfsDrainsOldestAllocationDespiteRewrites)
{
    Rig rig(DrainPolicy::Fcfs);
    MemSideBbpb bbpb(rig.cfg, rig.eq, rig.nvmm, rig.stats);
    bbpb.persistStore(0, blk(0), 8, pattern(1));
    bbpb.persistStore(0, blk(1), 8, pattern(2));
    bbpb.persistStore(0, blk(0), 8, pattern(3));
    bbpb.persistStore(0, blk(2), 8, pattern(4));
    rig.eq.run();
    EXPECT_FALSE(bbpb.holds(0, blk(0)));
    EXPECT_TRUE(bbpb.holds(0, blk(1)));
}

class EveryDrainPolicy : public ::testing::TestWithParam<DrainPolicy>
{
};

TEST_P(EveryDrainPolicy, DrainsNeverLoseData)
{
    Rig rig(GetParam(), 8);
    MemSideBbpb bbpb(rig.cfg, rig.eq, rig.nvmm, rig.stats);
    Rng rng(3);
    // Hammer 32 blocks with random writes; everything must eventually
    // land in media with its newest value.
    std::map<Addr, unsigned char> newest;
    for (int i = 0; i < 400; ++i) {
        Addr b = blk(static_cast<unsigned>(rng.below(32)));
        auto v = static_cast<unsigned char>(rng.below(250) + 1);
        while (!bbpb.canAcceptPersist(0, b))
            rig.eq.step();
        bbpb.persistStore(0, b, 8, pattern(v));
        newest[b] = v;
    }
    // Crash-drain the rest and apply like the crash engine would.
    rig.eq.run();
    for (const auto &rec : bbpb.crashDrainRecords())
        rig.store.writeBlock(rec.block, rec.data.bytes.data());
    rig.nvmm.drainAllToMedia();
    for (const auto &[b, v] : newest) {
        std::uint64_t expect = 0;
        std::memset(&expect, v, 8);
        EXPECT_EQ(rig.store.read64(b), expect)
            << drainPolicyName(GetParam());
    }
}

TEST_P(EveryDrainPolicy, FullSystemWorkloadStaysConsistent)
{
    SystemConfig cfg;
    cfg.num_cores = 2;
    cfg.l1d.size_bytes = 8_KiB;
    cfg.llc.size_bytes = 32_KiB;
    cfg.dram.size_bytes = 64_MiB;
    cfg.nvmm.size_bytes = 64_MiB;
    cfg.mode = PersistMode::BbbMemSide;
    cfg.bbpb.drain_policy = GetParam();

    System sys(cfg);
    WorkloadParams p;
    p.ops_per_thread = 300;
    p.initial_elements = 50;
    LinkedListWorkload list(p);
    list.install(sys);
    sys.runAndCrashAt(nsToTicks(20000));
    RecoveryResult res = list.checkRecovery(sys.pmemImage());
    EXPECT_TRUE(res.consistent()) << drainPolicyName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, EveryDrainPolicy,
                         ::testing::Values(DrainPolicy::Fcfs,
                                           DrainPolicy::Lrw,
                                           DrainPolicy::Random),
                         [](const auto &param_info) {
                             return drainPolicyName(param_info.param);
                         });

// ---------------------------------------------------------------------
// Section III-C: relaxed consistency needs a battery-backed SB.
// ---------------------------------------------------------------------

namespace
{

/**
 * Sequential-key linked list under a relaxed-consistency BBB machine with
 * a tiny bbPB (so the SB head blocks and younger stores retire out of
 * order). Returns true if the persisted image violates per-thread program
 * order (a reachable key gap).
 */
bool
orderViolatedAtCrash(bool battery_backed_sb, Tick crash, std::uint64_t seed)
{
    SystemConfig cfg;
    cfg.num_cores = 1;
    cfg.l1d.size_bytes = 8_KiB;
    cfg.llc.size_bytes = 32_KiB;
    cfg.dram.size_bytes = 64_MiB;
    cfg.nvmm.size_bytes = 64_MiB;
    cfg.mode = PersistMode::BbbMemSide;
    cfg.relaxed_consistency = true; // out-of-order SB drain
    cfg.sb_battery_backed = battery_backed_sb;
    cfg.bbpb.entries = 1; // head blocks constantly
    cfg.seed = seed;

    System sys(cfg);
    sys.onThread(0, [&](ThreadContext &tc) {
        TcAccessor m(tc);
        Addr root = sys.heap().rootAddr(0);
        for (std::uint64_t i = 1; i <= 4000; ++i)
            LinkedListWorkload::appendNode(m, sys.heap(), 0, root, i);
    });
    sys.runAndCrashAt(crash);

    PmemImage img = sys.pmemImage();
    Addr node = img.read64(sys.heap().rootAddr(0));
    std::uint64_t prev = 0;
    bool first = true;
    while (node != 0 && img.validPersistent(node)) {
        std::uint64_t key = img.read64(node);
        if (img.read64(node + 8) != nodeChecksum(key))
            return true; // torn payload is also an ordering violation
        if (!first && key + 1 != prev)
            return true; // gap: younger persisted, older lost
        prev = key;
        first = false;
        node = img.read64(node + 16);
    }
    return false;
}

} // namespace

TEST(SbBattery, BatteryBackedSbPreservesProgramOrder)
{
    for (int i = 1; i <= 6; ++i) {
        EXPECT_FALSE(
            orderViolatedAtCrash(true, nsToTicks(9000ull * i), 11u * i))
            << "crash point " << i;
    }
}

TEST(SbBattery, VolatileSbEventuallyViolatesProgramOrder)
{
    bool violated = false;
    for (int i = 1; i <= 12 && !violated; ++i)
        violated = orderViolatedAtCrash(false, nsToTicks(7500ull * i),
                                        11u * i);
    EXPECT_TRUE(violated)
        << "expected a Section III-C ordering hazard with a volatile SB";
}
