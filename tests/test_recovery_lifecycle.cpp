/**
 * @file
 * Degenerate crash points in the crash–recover–resume lifecycle, plus
 * the bounds-checked image view and the campaign watchdog:
 *
 *  - out-of-range PmemImage reads surface as RecoveryResult::oob
 *    (zero-filled data, counted), never UB or an assert;
 *  - a crash at tick 0 — before a single instruction ran — recovers
 *    Clean from the installed image;
 *  - a completely empty backing store is a structured Unrecoverable
 *    (heap magic missing), not a crash;
 *  - crashing within the first few cycles of execution (around the
 *    first persisting stores) still recovers and resumes;
 *  - a second crash almost immediately after a resume keeps the whole
 *    lifecycle sound (no oracle violation, never an abort);
 *  - a hung campaign job dies through the BBB_JOB_TIMEOUT_S watchdog,
 *    printing the offender's repro line.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <thread>

#include "api/experiment.hh"
#include "api/system.hh"
#include "recover/lifetime.hh"
#include "recover/recovery_manager.hh"
#include "workloads/workload.hh"

using namespace bbb;

namespace
{

SystemConfig
smallCfg(PersistMode mode)
{
    SystemConfig c;
    c.num_cores = 2;
    c.l1d.size_bytes = 4_KiB;
    c.llc.size_bytes = 16_KiB;
    c.dram.size_bytes = 64_MiB;
    c.nvmm.size_bytes = 64_MiB;
    c.bbpb.entries = 8;
    c.mode = mode;
    return c;
}

WorkloadParams
smallParams()
{
    WorkloadParams p;
    p.ops_per_thread = 100;
    p.initial_elements = 40;
    p.array_elements = 1 << 12;
    return p;
}

} // namespace

TEST(PmemImageBounds, OutOfRangeReadsAreCountedNotFatal)
{
    System sys(smallCfg(PersistMode::BbbMemSide));
    PmemImage img = sys.pmemImage();

    // Far beyond any mapped range: zero data, one counted OOB read.
    Addr wild = ~0ull - 4096;
    EXPECT_FALSE(img.validPersistent(wild));
    EXPECT_EQ(img.read64(wild), 0u);
    EXPECT_EQ(img.oobReads(), 1u);

    // A read straddling the end of the address space is OOB too.
    img.read64(sys.addrMap().end() - 4);
    EXPECT_EQ(img.oobReads(), 2u);

    // In-range reads leave the counter alone.
    img.read64(sys.addrMap().persistBase());
    EXPECT_EQ(img.oobReads(), 2u);
}

TEST(DegenerateCrash, TickZeroRecoversClean)
{
    System sys(smallCfg(PersistMode::Eadr));
    auto wl = makeWorkload("linkedlist", smallParams());
    wl->install(sys);
    sys.runAndCrashAt(0); // nothing executed: image is prepare()'s

    BackingStore raw = sys.image().clone();
    RecoveryManager mgr(raw, sys.addrMap(), 2);
    RecoverOutcome out = mgr.recover(*wl);
    EXPECT_TRUE(out.resumable());
    EXPECT_EQ(out.status, RecoveryStatus::Clean);
    EXPECT_EQ(out.repairs, 0u);
    EXPECT_TRUE(out.verify.consistent());
}

TEST(DegenerateCrash, EmptyImageIsStructuredUnrecoverable)
{
    System sys(smallCfg(PersistMode::BbbMemSide));
    auto wl = makeWorkload("hashmap", smallParams());
    wl->install(sys);

    BackingStore empty; // never booted: no heap magic, all zeros
    RecoveryManager mgr(empty, sys.addrMap(), 2);
    RecoverOutcome out = mgr.recover(*wl);
    EXPECT_FALSE(out.resumable());
    EXPECT_EQ(out.status, RecoveryStatus::Unrecoverable);
    EXPECT_FALSE(out.detail.empty());
}

TEST(DegenerateCrash, FirstPersistingStoresSurviveCrash)
{
    // Crash within the first handful of cycles: at most the opening
    // stores of the first operation are in flight.
    for (Tick tick : {Tick(1), Tick(10), Tick(100), Tick(1000)}) {
        System sys(smallCfg(PersistMode::BbbProcSide));
        auto wl = makeWorkload("skiplist", smallParams());
        wl->install(sys);
        sys.runAndCrashAt(tick);

        BackingStore raw = sys.image().clone();
        RecoveryManager mgr(raw, sys.addrMap(), 2);
        RecoverOutcome out = mgr.recover(*wl);
        EXPECT_TRUE(out.resumable()) << "crash at tick " << tick;
        EXPECT_TRUE(out.verify.consistent()) << "crash at tick " << tick;
    }
}

TEST(DegenerateCrash, SecondCrashMidResumeStaysSound)
{
    // Rounds 1 and 2 reseed from the recovered image and crash again
    // almost immediately — often before resume() completes one op.
    LifetimeSample s;
    s.cfg = smallCfg(PersistMode::BbbMemSide);
    s.workload = "linkedlist";
    s.params = smallParams();
    s.plan = FaultPlan::parse("none");
    s.plan_name = "none";
    s.seed = 0xd15ea5e;
    s.rounds = 3;
    s.min_crash_tick = 1;
    s.max_crash_tick = nsToTicks(3000);

    LifetimeResult r = runLifetimeSample(s);
    EXPECT_NE(r.outcome, LifetimeOutcome::OracleViolation)
        << (r.firstViolation() ? r.firstViolation()->detail : "");
    ASSERT_EQ(r.round_log.size(), 3u);
    for (const LifetimeRound &rr : r.round_log)
        EXPECT_NE(rr.recovery, RecoveryStatus::Unrecoverable);
}

TEST(Watchdog, KillsHungJobWithReproLine)
{
    EXPECT_EXIT(
        {
            setenv("BBB_JOB_TIMEOUT_S", "1", 1);
            runIndexedJobs(
                1,
                [](std::size_t) {
                    // Hang long enough for the 1 s watchdog; bounded so
                    // a broken watchdog fails the test instead of
                    // wedging it.
                    for (int i = 0; i < 600; ++i)
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(50));
                },
                1,
                [](std::size_t) {
                    return std::string("hung-lifetime-repro");
                });
        },
        ::testing::ExitedWithCode(1), "hung-lifetime-repro");
}
