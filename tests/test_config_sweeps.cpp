/**
 * @file
 * Configuration sweeps: timing must respond to hardware parameters in the
 * physically sensible direction, DRAM/NVMM routing must be exact, and the
 * logging/stat plumbing must behave.
 */

#include <gtest/gtest.h>

#include "api/experiment.hh"
#include "api/system.hh"
#include "mem/mem_ctrl.hh"
#include "sim/logging.hh"

using namespace bbb;

namespace
{

SystemConfig
baseCfg(PersistMode mode = PersistMode::BbbMemSide)
{
    SystemConfig cfg;
    cfg.num_cores = 2;
    cfg.l1d.size_bytes = 4_KiB;
    cfg.llc.size_bytes = 16_KiB;
    cfg.dram.size_bytes = 64_MiB;
    cfg.nvmm.size_bytes = 64_MiB;
    cfg.mode = mode;
    return cfg;
}

/** Pointer-chase over n cold NVMM blocks: read-latency bound. */
Tick
chaseTime(const SystemConfig &cfg, unsigned n)
{
    System sys(cfg);
    Addr base = sys.heap().alloc(0, n * kBlockSize, 64);
    sys.onThread(0, [&](ThreadContext &tc) {
        std::uint64_t sink = 0;
        for (unsigned i = 0; i < n; ++i)
            sink += tc.load64(base + i * kBlockSize);
        tc.store64(base, sink);
    });
    sys.run();
    return sys.executionTime();
}

} // namespace

TEST(ConfigSweep, SlowerNvmmReadSlowsColdLoads)
{
    SystemConfig fast = baseCfg();
    SystemConfig slow = baseCfg();
    slow.nvmm.read_latency = nsToTicks(600);
    EXPECT_GT(chaseTime(slow, 200), chaseTime(fast, 200));
}

TEST(ConfigSweep, HigherClockShortensComputation)
{
    auto run = [](std::uint64_t mhz) {
        SystemConfig cfg = baseCfg();
        cfg.clock_mhz = mhz;
        System sys(cfg);
        sys.onThread(0, [](ThreadContext &tc) { tc.compute(100000); });
        sys.run();
        return sys.executionTime();
    };
    EXPECT_GT(run(1000), run(2000));
    EXPECT_GT(run(2000), run(4000));
}

TEST(ConfigSweep, MoreChannelsRaiseWriteThroughput)
{
    // Measured at the controller: a burst of pending writes drains in
    // time inversely proportional to the channel count.
    auto drain_time = [](unsigned channels) {
        EventQueue eq;
        BackingStore store;
        DirectMedia media(store);
        StatRegistry stats;
        MemConfig mc;
        mc.channels = channels;
        mc.wpq_entries = 64;
        mc.write_latency = nsToTicks(500);
        mc.write_occupancy = nsToTicks(28);
        MemCtrl ctrl("nvmm", mc, eq, media, stats);
        BlockData d;
        for (Addr i = 0; i < 64; ++i)
            EXPECT_TRUE(ctrl.enqueueWrite(i * kBlockSize, d));
        eq.run();
        return eq.now();
    };
    Tick one = drain_time(1);
    Tick eight = drain_time(8);
    EXPECT_GT(one, eight);
    // 64 blocks on 1 channel: 63 occupancies + final latency.
    EXPECT_EQ(one, 63 * nsToTicks(28) + nsToTicks(500));
    // On 8 channels: 7 occupancies on each + final latency.
    EXPECT_EQ(eight, 7 * nsToTicks(28) + nsToTicks(500));
}

TEST(ConfigSweep, LargerL1CutsMisses)
{
    auto misses = [](std::uint64_t l1_bytes) {
        SystemConfig cfg = baseCfg();
        cfg.l1d.size_bytes = l1_bytes;
        System sys(cfg);
        Addr base = sys.heap().alloc(0, 128 * kBlockSize, 64);
        sys.onThread(0, [&](ThreadContext &tc) {
            for (int round = 0; round < 4; ++round) {
                for (unsigned i = 0; i < 128; ++i)
                    tc.load64(base + i * kBlockSize);
            }
        });
        sys.run();
        return sys.stats().lookup("hierarchy", "l1_misses");
    };
    EXPECT_GT(misses(2_KiB), misses(16_KiB));
}

TEST(ConfigSweep, DramTrafficNeverTouchesNvmm)
{
    System sys(baseCfg(PersistMode::Eadr));
    Addr dram_addr = 1_MiB; // well inside the DRAM range
    sys.onThread(0, [&](ThreadContext &tc) {
        for (unsigned i = 0; i < 64; ++i)
            tc.store64(dram_addr + i * kBlockSize, i);
        for (unsigned i = 0; i < 64; ++i)
            tc.load64(dram_addr + i * kBlockSize);
    });
    sys.run();
    sys.eventQueue().run();
    EXPECT_EQ(sys.stats().lookup("nvmm", "media_reads"), 0u);
    EXPECT_EQ(sys.stats().lookup("nvmm", "media_writes"), 0u);
    EXPECT_GT(sys.stats().lookup("dram", "media_reads"), 0u);
}

TEST(ConfigSweep, ResidencyHistogramPopulates)
{
    SystemConfig cfg = baseCfg(PersistMode::BbbMemSide);
    cfg.bbpb.entries = 4;
    System sys(cfg);
    Addr base = sys.heap().alloc(0, 64 * kBlockSize, 64);
    sys.onThread(0, [&](ThreadContext &tc) {
        for (unsigned i = 0; i < 64; ++i)
            tc.store64(base + i * kBlockSize, i);
    });
    sys.run();
    // Drains happened; the residency histogram must have samples.
    std::ostringstream os;
    ASSERT_NE(sys.stats().find("bbpb"), nullptr);
    sys.stats().find("bbpb")->dump(os);
    EXPECT_NE(os.str().find("residency_ns"), std::string::npos);
    EXPECT_GT(sys.stats().lookup("bbpb", "drains"), 0u);
}

TEST(Logging, LevelsGateOutput)
{
    LogLevel before = logLevel();
    setLogLevel(LogLevel::Silent);
    warn("this warning must be suppressed %d", 1);
    inform("and this info too");
    setLogLevel(LogLevel::Debug);
    debugLog("debug visible at debug level");
    setLogLevel(before);
    SUCCEED(); // no crash, no format issues
}

TEST(Logging, PanicAndFatalTerminate)
{
    EXPECT_DEATH(panic("boom %d", 42), "boom 42");
    EXPECT_EXIT(fatal("bad config %s", "x"),
                ::testing::ExitedWithCode(1), "bad config x");
}

TEST(ConfigSweep, SeedChangesWorkloadTiming)
{
    auto run = [](std::uint64_t seed) {
        SystemConfig cfg = baseCfg();
        cfg.seed = seed;
        WorkloadParams p;
        p.ops_per_thread = 200;
        p.initial_elements = 100;
        p.seed = seed;
        ExperimentResult r = runExperiment(cfg, "hashmap", p);
        return r.exec_ticks;
    };
    // Different seeds give different (but reproducible) runs.
    EXPECT_NE(run(1), run(2));
    EXPECT_EQ(run(3), run(3));
}
