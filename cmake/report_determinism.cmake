# Prove a binary's --json report is a pure function of its inputs: run
# it at two worker-pool widths under BBB_REPORT_CANONICAL=1 and require
# byte-identical documents.
#
# Usage (driven by the report_smoke ctest label):
#   cmake -DBIN=<binary> -DARGS="<args>" -DOUT=<stem>
#         -P report_determinism.cmake

separate_arguments(ARGS)

foreach(jobs 1 8)
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E env BBB_REPORT_CANONICAL=1
                ${BIN} ${ARGS} --jobs ${jobs} --json ${OUT}.j${jobs}.json
        RESULT_VARIABLE run_rc)
    if(NOT run_rc EQUAL 0)
        message(FATAL_ERROR "${BIN} --jobs ${jobs} exited with ${run_rc}")
    endif()
endforeach()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${OUT}.j1.json ${OUT}.j8.json
    RESULT_VARIABLE cmp_rc)
if(NOT cmp_rc EQUAL 0)
    message(FATAL_ERROR
            "report differs between --jobs 1 and --jobs 8: "
            "${OUT}.j1.json vs ${OUT}.j8.json")
endif()
