# Prove the sharded event kernel is byte-neutral: run one binary's
# --json report under BBB_REPORT_CANONICAL=1 at --shards 1 (the inline
# kernel) and --shards 4 (three worker shards) and require byte-identical
# documents. Optionally diff the width-1 document against a committed
# baseline at --tolerance 0 (BASELINE + PYTHON + TOOL).
#
# Usage (driven by the report_smoke ctest label):
#   cmake -DBIN=<binary> -DARGS="<args>" -DOUT=<stem>
#         [-DBASELINE=<json> -DPYTHON=<python3> -DTOOL=<compare...py>]
#         -P shard_determinism.cmake

separate_arguments(ARGS)

foreach(shards 1 4)
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E env BBB_REPORT_CANONICAL=1
                ${BIN} ${ARGS} --shards ${shards}
                --json ${OUT}.s${shards}.json
        RESULT_VARIABLE run_rc)
    if(NOT run_rc EQUAL 0)
        message(FATAL_ERROR "${BIN} --shards ${shards} exited with ${run_rc}")
    endif()
endforeach()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${OUT}.s1.json ${OUT}.s4.json
    RESULT_VARIABLE cmp_rc)
if(NOT cmp_rc EQUAL 0)
    message(FATAL_ERROR
            "report differs between --shards 1 and --shards 4: "
            "${OUT}.s1.json vs ${OUT}.s4.json")
endif()

if(DEFINED BASELINE)
    execute_process(
        COMMAND ${PYTHON} ${TOOL} diff --tolerance 0
                ${BASELINE} ${OUT}.s1.json
        RESULT_VARIABLE diff_rc)
    if(NOT diff_rc EQUAL 0)
        message(FATAL_ERROR
                "sharded run diverges from committed baseline ${BASELINE}")
    endif()
endif()
