# Run one bench/campaign binary with `--json` and schema-validate the
# resulting bbb-bench-report document.
#
# Usage (driven by the report_smoke / perf_smoke ctest labels):
#   cmake -DBIN=<binary> -DARGS="<args>" -DJSON=<out.json>
#         -DPYTHON=<python3> -DTOOL=<compare_bench_json.py>
#         [-DCANONICAL=0] -P report_smoke.cmake
#
# CANONICAL defaults to 1 (host section zeroed, byte-stable document);
# the perf_smoke test passes 0 so the live host timings and sim-rate
# telemetry go through schema validation too.

separate_arguments(ARGS)

if(NOT DEFINED CANONICAL)
    set(CANONICAL 1)
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E env BBB_REPORT_CANONICAL=${CANONICAL}
            ${BIN} ${ARGS} --json ${JSON}
    RESULT_VARIABLE run_rc)
if(NOT run_rc EQUAL 0)
    message(FATAL_ERROR "${BIN} exited with ${run_rc}")
endif()

execute_process(
    COMMAND ${PYTHON} ${TOOL} validate ${JSON}
    RESULT_VARIABLE validate_rc)
if(NOT validate_rc EQUAL 0)
    message(FATAL_ERROR "schema validation failed for ${JSON}")
endif()
