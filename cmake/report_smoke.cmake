# Run one bench/campaign binary with `--json` and schema-validate the
# resulting bbb-bench-report document.
#
# Usage (driven by the report_smoke ctest label):
#   cmake -DBIN=<binary> -DARGS="<args>" -DJSON=<out.json>
#         -DPYTHON=<python3> -DTOOL=<compare_bench_json.py>
#         -P report_smoke.cmake

separate_arguments(ARGS)

execute_process(
    COMMAND ${CMAKE_COMMAND} -E env BBB_REPORT_CANONICAL=1
            ${BIN} ${ARGS} --json ${JSON}
    RESULT_VARIABLE run_rc)
if(NOT run_rc EQUAL 0)
    message(FATAL_ERROR "${BIN} exited with ${run_rc}")
endif()

execute_process(
    COMMAND ${PYTHON} ${TOOL} validate ${JSON}
    RESULT_VARIABLE validate_rc)
if(NOT validate_rc EQUAL 0)
    message(FATAL_ERROR "schema validation failed for ${JSON}")
endif()
