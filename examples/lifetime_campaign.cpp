/**
 * @file
 * Example: the crash–recover–resume lifetime campaign and its
 * repro-replay face.
 *
 * Campaign mode (default) sweeps seeded lifetimes — K rounds of
 * run → crash → recover → resume over one persistent image — across
 * workloads x persistency modes x fault plans on the parallel
 * experiment pool. Every round is judged by the durable-linearizability
 * oracle (see src/recover/lifetime.hh); the tally plus a one-line repro
 * for any violation is printed.
 *
 * Replay mode re-runs exactly one lifetime from a repro line printed by
 * a campaign (crash ticks re-derive from the seed):
 *
 *   lifetime_campaign --workload hashmap --mode bbb-mem-side \
 *                     --seed 123456 --rounds 3 --fault-plan flaky-media
 *
 * Usage:
 *   lifetime_campaign [--workloads NAME[,NAME...]] [--modes M[,M...]]
 *                     [--plans P[,P...]] [--rounds K] [--lifetimes N]
 *                     [--ops N] [--initial N] [--campaign-seed N]
 *                     [--jobs N] [--verbose] [--json PATH]
 *   lifetime_campaign --workload NAME --mode M --seed S --rounds K
 *                     --fault-plan P
 *
 * Exit status: 0 when no lifetime violates the oracle, 1 otherwise.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "api/cli.hh"
#include "api/report.hh"
#include "recover/lifetime.hh"

using namespace bbb;

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--workloads NAME[,NAME...]] [--modes M[,M...]]\n"
        "          [--plans P[,P...]] [--rounds K] [--lifetimes N]\n"
        "          [--ops N] [--initial N] [--campaign-seed N] [--jobs N]\n"
        "          [--shards N] [--spec on|off] [--verbose] [--json PATH]\n"
        "          [--traces T[,T...]] [--battery-caps J[,J...]]\n"
        "          [--policies P[,P...]] [--media direct|ftl]\n"
        "   or: %s --workload NAME --mode M --seed S --rounds K "
        "--fault-plan P\n"
        "          [--trace T --battery-j J --policy P] "
        "[--media direct|ftl]\n",
        argv0, argv0);
    std::exit(2);
}

/** Endurance rating used whenever this example runs media=ftl: low
 *  enough that lifetime-scale write streams retire frames. */
constexpr std::uint64_t kFtlEnduranceCycles = 512;

/** The campaign machine: small enough that crash points land mid-run. */
SystemConfig
campaignCfg()
{
    SystemConfig cfg;
    cfg.num_cores = 2;
    cfg.l1d.size_bytes = 4_KiB;
    cfg.llc.size_bytes = 16_KiB;
    cfg.dram.size_bytes = 64_MiB;
    cfg.nvmm.size_bytes = 64_MiB;
    cfg.bbpb.entries = 8;
    cfg.l1d.repl = ReplPolicy::Random;
    cfg.llc.repl = ReplPolicy::Random;
    return cfg;
}

/**
 * Resolve --plans tokens: comma-separated preset names (multi-pair
 * key=value plans contain commas themselves — replay those one at a
 * time through --fault-plan).
 */
std::vector<NamedFaultPlan>
parsePlans(const std::string &arg)
{
    std::vector<NamedFaultPlan> plans;
    for (const std::string &name : bbb::cli::splitList(arg))
        plans.push_back({name, FaultPlan::parse(name)});
    return plans;
}

} // namespace

int
main(int argc, char **argv)
{
    LifetimeSpec spec;
    spec.base = campaignCfg();
    spec.workloads = {"hashmap", "skiplist", "linkedlist"};
    spec.params.ops_per_thread = 400;
    spec.params.initial_elements = 100;
    spec.params.array_elements = 1 << 12;
    spec.rounds = 3;
    spec.lifetimes = 1;
    spec.min_crash_tick = nsToTicks(2000);
    spec.max_crash_tick = nsToTicks(120000);
    spec.campaign_seed = 1;

    unsigned jobs = 0;
    bool verbose = false;
    std::string json_path;
    std::string media;

    // Replay flags (presence of --seed selects replay mode).
    std::string replay_workload;
    std::string replay_mode = "bbb-mem-side";
    std::uint64_t replay_seed = 0;
    bool replay = false;
    std::string replay_plan = "none";
    std::string replay_trace;
    double replay_cap = 50e-6;
    DegradePolicy replay_policy = DegradePolicy::None;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                usage(argv[0]);
            return argv[i];
        };
        if (arg == "--workloads") {
            spec.workloads = bbb::cli::splitList(next());
        } else if (arg == "--modes") {
            spec.modes.clear();
            for (const std::string &m : bbb::cli::splitList(next()))
                spec.modes.push_back(persistModeFromName(m));
        } else if (arg == "--plans") {
            spec.plans = parsePlans(next());
        } else if (arg == "--rounds") {
            spec.rounds = static_cast<unsigned>(
                std::strtoul(next().c_str(), nullptr, 10));
        } else if (arg == "--lifetimes") {
            spec.lifetimes = static_cast<unsigned>(
                std::strtoul(next().c_str(), nullptr, 10));
        } else if (arg == "--ops") {
            spec.params.ops_per_thread =
                std::strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--initial") {
            spec.params.initial_elements =
                std::strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--campaign-seed") {
            spec.campaign_seed = std::strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--jobs") {
            jobs = static_cast<unsigned>(
                std::strtoul(next().c_str(), nullptr, 10));
        } else if (arg == "--shards") {
            next(); // value parsed/validated below by cli::shardsArg
        } else if (arg == "--spec") {
            next(); // value parsed/validated below by cli::specArg
        } else if (arg == "--verbose") {
            verbose = true;
        } else if (arg == "--json") {
            json_path = next();
        } else if (arg == "--workload") {
            replay_workload = next();
        } else if (arg == "--mode") {
            replay_mode = next();
        } else if (arg == "--seed") {
            replay_seed = std::strtoull(next().c_str(), nullptr, 10);
            replay = true;
        } else if (arg == "--fault-plan") {
            replay_plan = next();
        } else if (arg == "--traces") {
            spec.traces = bbb::cli::splitList(next());
        } else if (arg == "--battery-caps") {
            spec.battery_caps.clear();
            for (const std::string &tok : bbb::cli::splitList(next()))
                spec.battery_caps.push_back(
                    std::strtod(tok.c_str(), nullptr));
        } else if (arg == "--policies") {
            spec.policies.clear();
            for (const std::string &tok : bbb::cli::splitList(next()))
                spec.policies.push_back(parseDegradePolicy(tok));
        } else if (arg == "--trace") {
            replay_trace = next();
        } else if (arg == "--battery-j") {
            replay_cap = std::strtod(next().c_str(), nullptr);
        } else if (arg == "--policy") {
            replay_policy = parseDegradePolicy(next());
        } else if (arg == "--media") {
            media = next();
            (void)mediaKindFromName(media); // validate (fatal on typo)
        } else if (arg == "--strict-args") {
            // This loop is already strict: unknown or value-less flags
            // exit(2) via usage(). Accepted so campaign scripts can pass
            // the same flag set to drivers and cli::-based benches.
        } else {
            usage(argv[0]);
        }
    }

    // Sharded kernel width for every simulated life (campaign and
    // replay): byte-neutral to results, so repro lines need not carry it.
    spec.base.shards =
        bbb::cli::shardsArg(argc, argv, spec.base.num_cores);
    spec.base.spec = bbb::cli::specArg(argc, argv, spec.base.shards);

    if (!media.empty()) {
        spec.base.media.kind = mediaKindFromName(media);
        if (media == "ftl")
            spec.base.media.endurance_cycles = kFtlEnduranceCycles;
        // Stamp the backend into the plan tokens (point-crash sweeps) so
        // every printed repro line is complete on its own. Power-trace
        // sweeps rebuild their plans internally; their repro lines need
        // --media repeated, which replay mode accepts.
        if (spec.plans.empty() && spec.traces.empty())
            spec.plans = faultPlanPresets();
        for (NamedFaultPlan &np : spec.plans)
            np.plan.media = media;
    }

    if (replay) {
        if (replay_workload.empty())
            usage(argv[0]);
        LifetimeSample sample;
        sample.cfg = spec.base;
        sample.cfg.mode = persistModeFromName(replay_mode);
        sample.workload = replay_workload;
        sample.params = spec.params;
        sample.plan = FaultPlan::parse(replay_plan);
        sample.plan_name = replay_plan;
        if (!replay_trace.empty()) {
            // Power-trace replay: overlay the power environment on the
            // (power-field-free) --fault-plan rest, exactly inverting
            // LifetimeResult::reproLine.
            sample.plan.trace = replay_trace;
            sample.plan.battery_cap_j = replay_cap;
            sample.plan.policy = replay_policy;
            sample.plan_name = replay_trace + "+" +
                               compactDouble(replay_cap) + "J+" +
                               degradePolicyName(replay_policy);
        }
        if (!media.empty() && sample.plan.media.empty())
            sample.plan.media = media;
        if (sample.plan.media == "ftl")
            sample.cfg.media.endurance_cycles = kFtlEnduranceCycles;
        sample.seed = replay_seed;
        sample.rounds = spec.rounds;
        sample.min_crash_tick = spec.min_crash_tick;
        sample.max_crash_tick = spec.max_crash_tick;

        LifetimeResult r = runLifetimeSample(sample);
        std::printf("replay   %s\n", r.reproLine().c_str());
        std::printf("outcome  %s\n", lifetimeOutcomeName(r.outcome));
        for (std::size_t i = 0; i < r.round_log.size(); ++i) {
            const LifetimeRound &rr = r.round_log[i];
            std::printf("round %zu  crash %9.1f us  %-18s damaged %3llu  "
                        "repairs %3llu  dropped %4llu  healed %llu/%llu "
                        "torn %llu dangling %llu oob %llu  image %016llx%s%s\n",
                        i, ticksToNs(rr.crash_tick) / 1000.0,
                        recoveryStatusName(rr.recovery),
                        (unsigned long long)rr.damaged_blocks,
                        (unsigned long long)rr.repairs,
                        (unsigned long long)rr.dropped,
                        (unsigned long long)rr.healed.intact,
                        (unsigned long long)rr.healed.checked,
                        (unsigned long long)rr.healed.torn,
                        (unsigned long long)rr.healed.dangling,
                        (unsigned long long)rr.healed.oob,
                        (unsigned long long)rr.image_fingerprint,
                        rr.oracle_ok ? "" : "  ORACLE: ",
                        rr.detail.c_str());
            if (rr.power_round)
                std::printf("         budget %.3e J%s%s  proactive %llu\n",
                            rr.charge_at_outage,
                            rr.brownout_outage ? "  brownout-outage" : "",
                            rr.had_warning ? "  warned" : "",
                            (unsigned long long)rr.proactive_blocks);
        }
        if (r.powered)
            std::printf(
                "power    outages %llu (brownout %llu) survived %llu "
                "warnings %llu resume-waits %llu%s  min-headroom %.3e J\n",
                (unsigned long long)r.power.outages,
                (unsigned long long)r.power.brownout_outages,
                (unsigned long long)r.power.brownouts_survived,
                (unsigned long long)r.power.warnings,
                (unsigned long long)r.power.resume_waits,
                r.power.starved ? "  STARVED" : "",
                r.power.min_headroom_j);
        return r.outcome == LifetimeOutcome::OracleViolation ? 1 : 0;
    }

    LifetimeSummary summary;
    double secs = timedSeconds(
        [&] { summary = runLifetimeCampaign(spec, jobs); });

    if (verbose) {
        for (const LifetimeResult &r : summary.results) {
            std::printf("%-12s %-14s %-16s %-18s %s\n", r.workload.c_str(),
                        persistModeName(r.mode), r.plan_name.c_str(),
                        lifetimeOutcomeName(r.outcome),
                        r.reproLine().c_str());
        }
    }

    std::printf("lifetime campaign %zu lifetimes (%u rounds each): "
                "%llu clean, %llu degraded-repaired, %llu "
                "oracle-violations\n",
                summary.results.size(), spec.rounds,
                (unsigned long long)summary.clean,
                (unsigned long long)summary.degraded,
                (unsigned long long)summary.violations);

    if (!json_path.empty()) {
        BenchReport rep("lifetime_campaign");
        std::string names;
        for (const std::string &w : spec.workloads)
            names += (names.empty() ? "" : ",") + w;
        rep.setConfig("workloads", names);
        rep.setConfig("rounds", std::uint64_t{spec.rounds});
        rep.setConfig("lifetimes", std::uint64_t{spec.lifetimes});
        rep.setConfig("ops_per_thread",
                      std::uint64_t{spec.params.ops_per_thread});
        rep.setConfig("initial_elements",
                      std::uint64_t{spec.params.initial_elements});
        rep.setConfig("campaign_seed", std::uint64_t{spec.campaign_seed});
        rep.setConfig("bbpb_entries", std::uint64_t{spec.base.bbpb.entries});
        rep.setConfig("media", mediaKindName(spec.base.media.kind));
        if (!spec.traces.empty()) {
            std::string traces, caps, pols;
            for (const std::string &t : spec.traces)
                traces += (traces.empty() ? "" : ",") + t;
            for (double c : spec.battery_caps)
                caps += (caps.empty() ? "" : ",") + compactDouble(c);
            for (DegradePolicy p : spec.policies) {
                if (!pols.empty())
                    pols += ",";
                pols += degradePolicyName(p);
            }
            rep.setConfig("traces", traces);
            if (!caps.empty())
                rep.setConfig("battery_caps_j", caps);
            if (!pols.empty())
                rep.setConfig("policies", pols);
        }
        rep.measured().merge(summary.metrics, "");
        rep.noteRun(secs, jobs);
        rep.noteShards(spec.base.shards);
        rep.writeFile(json_path);
    }

    if (const LifetimeResult *bug = summary.firstViolation()) {
        std::printf("VIOLATION repro: %s %s\n", argv[0],
                    bug->reproLine().c_str());
        if (const LifetimeRound *rr = bug->firstViolation())
            std::printf("VIOLATION round %zu: %s\n",
                        static_cast<std::size_t>(rr - bug->round_log.data()),
                        rr->detail.c_str());
        return 1;
    }
    return 0;
}
