/**
 * @file
 * Example: a general-purpose experiment driver over the public API.
 *
 * Runs any registered workload under any persistency mode with arbitrary
 * bbPB sizing and prints the full metric set plus (optionally) the raw
 * statistics dump — the command-line face of the library.
 *
 * Usage:
 *   run_experiment [--workload NAME[,NAME...]|all] [--mode MODE]
 *                  [--entries N] [--ops N] [--initial N] [--threshold F]
 *                  [--policy fcfs|lrw|random] [--jobs N] [--shards N]
 *                  [--stats] [--trace FILE] [--json PATH]
 *
 * Modes: adr-unsafe, adr-pmem, pmem-strict, eadr, bbb-mem-side,
 *        bbb-proc-side.
 *
 * With a single workload the full report (stats, crash drain, recovery,
 * trace) is printed. With a comma-separated list or `all`, the grid is
 * submitted to the parallel experiment pool (`--jobs N`, or BBB_JOBS,
 * default hardware concurrency) and one CSV row is printed per point.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "api/cli.hh"
#include "api/experiment.hh"
#include "api/report.hh"
#include "api/system.hh"
#include "api/trace.hh"

using namespace bbb;

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--workload NAME[,NAME...]|all] [--mode MODE]\n"
                 "          [--entries N] [--ops N] [--initial N]\n"
                 "          [--threshold F] [--policy fcfs|lrw|random]\n"
                 "          [--media direct|ftl] [--endurance N]\n"
                 "          [--jobs N] [--shards N] [--spec on|off] [--stats]"
                 " [--trace FILE] [--json PATH]\n\n"
                 "workloads:",
                 argv0);
    for (const auto &name : workloadNames())
        std::fprintf(stderr, " %s", name.c_str());
    std::fprintf(stderr, " rtree-spatial btree linkedlist\n");
    std::exit(2);
}

PersistMode
parseMode(const std::string &s, bool &auto_strict)
{
    auto_strict = false;
    if (s == "adr-unsafe")
        return PersistMode::AdrUnsafe;
    if (s == "adr-pmem")
        return PersistMode::AdrPmem;
    if (s == "pmem-strict") {
        auto_strict = true;
        return PersistMode::AdrPmem;
    }
    if (s == "eadr")
        return PersistMode::Eadr;
    if (s == "bbb-mem-side")
        return PersistMode::BbbMemSide;
    if (s == "bbb-proc-side")
        return PersistMode::BbbProcSide;
    fatal("unknown mode '%s'", s.c_str());
}

DrainPolicy
parsePolicy(const std::string &s)
{
    if (s == "fcfs")
        return DrainPolicy::Fcfs;
    if (s == "lrw")
        return DrainPolicy::Lrw;
    if (s == "random")
        return DrainPolicy::Random;
    fatal("unknown drain policy '%s'", s.c_str());
}

/** Split "a,b,c" (or "all") into workload names. */
std::vector<std::string>
parseWorkloads(const std::string &arg)
{
    if (arg == "all")
        return workloadNames();
    return bbb::cli::splitList(arg);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload = "hashmap";
    std::string trace_path;
    std::string json_path;
    bool auto_strict = false;
    bool dump_stats = false;
    unsigned jobs = bbb::cli::jobsArg(argc, argv);
    SystemConfig cfg = benchConfig(PersistMode::BbbMemSide, 32);
    cfg.shards = bbb::cli::shardsArg(argc, argv, cfg.num_cores);
    cfg.spec = bbb::cli::specArg(argc, argv, cfg.shards);
    WorkloadParams params = benchParams();
    params.ops_per_thread = 2000;
    params.initial_elements = 20000;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                usage(argv[0]);
            return argv[i];
        };
        if (arg == "--workload") {
            workload = next();
        } else if (arg == "--jobs") {
            jobs = static_cast<unsigned>(
                std::strtoul(next().c_str(), nullptr, 10));
        } else if (arg == "--shards") {
            next(); // value already parsed/validated by cli::shardsArg
        } else if (arg == "--spec") {
            next(); // value already parsed/validated by cli::specArg
        } else if (arg == "--mode") {
            cfg.mode = parseMode(next(), auto_strict);
            cfg.pmem_auto_strict = auto_strict;
        } else if (arg == "--entries") {
            cfg.bbpb.entries =
                static_cast<unsigned>(std::strtoul(next().c_str(), nullptr, 10));
        } else if (arg == "--ops") {
            params.ops_per_thread = std::strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--initial") {
            params.initial_elements =
                std::strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--threshold") {
            cfg.bbpb.drain_threshold = std::strtod(next().c_str(), nullptr);
        } else if (arg == "--policy") {
            cfg.bbpb.drain_policy = parsePolicy(next());
        } else if (arg == "--media") {
            cfg.media.kind = mediaKindFromName(next());
        } else if (arg == "--endurance") {
            cfg.media.endurance_cycles =
                std::strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--stats") {
            dump_stats = true;
        } else if (arg == "--trace") {
            trace_path = next();
        } else if (arg == "--json") {
            json_path = next();
        } else {
            usage(argv[0]);
        }
    }

    // Multi-workload sweeps go through the parallel pool as one grid and
    // print CSV; the rich single-run report needs direct System access.
    std::vector<std::string> sweep = parseWorkloads(workload);
    if (sweep.size() > 1) {
        std::vector<ExperimentSpec> specs;
        for (const std::string &name : sweep)
            specs.push_back({cfg, name, params});
        std::vector<ExperimentResult> results;
        double secs = timedSeconds(
            [&] { results = runExperiments(specs, jobs); });
        std::printf("%s\n", ExperimentResult::csvHeader().c_str());
        for (const ExperimentResult &r : results)
            std::printf("%s\n", r.toCsv().c_str());
        if (!json_path.empty()) {
            BenchReport report("run_experiment");
            report.setConfig("mode", persistModeName(cfg.mode));
            report.setConfig("bbpb_entries",
                             std::uint64_t{cfg.bbpb.entries});
            report.setConfig("ops_per_thread",
                             std::uint64_t{params.ops_per_thread});
            report.setConfig("initial_elements",
                             std::uint64_t{params.initial_elements});
            for (std::size_t i = 0; i < results.size(); ++i)
                report.addExperiment(sweep[i], results[i].metrics);
            report.noteRun(secs, jobs);
            report.noteShards(cfg.shards);
            report.writeFile(json_path);
        }
        return 0;
    }
    workload = sweep.empty() ? workload : sweep.front();

    System sys(cfg);
    TraceRecorder recorder(sys);
    auto wl = makeWorkload(workload, params);
    wl->install(sys);
    sys.run();

    std::printf("workload            %s\n", workload.c_str());
    std::printf("mode                %s%s\n", persistModeName(cfg.mode),
                auto_strict ? " (strict per-store flush+fence)" : "");
    std::printf("bbpb                %u entries, %.0f%% threshold, %s\n",
                cfg.bbpb.entries, cfg.bbpb.drain_threshold * 100,
                drainPolicyName(cfg.bbpb.drain_policy));
    if (cfg.media.kind == MediaKind::Ftl)
        std::printf("media               ftl (endurance %llu, wear-delta "
                    "%u): %llu programs, %llu migrations, %llu retired\n",
                    (unsigned long long)cfg.media.endurance_cycles,
                    cfg.media.wear_delta,
                    (unsigned long long)sys.stats().lookup("media",
                                                           "programs"),
                    (unsigned long long)sys.stats().lookup("media",
                                                           "migrations"),
                    (unsigned long long)sys.stats().lookup(
                        "media", "retired_frames"));
    std::printf("execution time      %.1f us\n",
                ticksToNs(sys.executionTime()) / 1000.0);
    std::printf("nvmm writes         %llu (flush-fair)\n",
                (unsigned long long)sys.effectiveNvmmWrites());
    std::printf("persisting stores   %llu of %llu stores\n",
                (unsigned long long)sys.stats().lookup(
                    "hierarchy", "persisting_stores"),
                (unsigned long long)sys.stats().lookup("hierarchy",
                                                       "stores"));
    const char *bbpb_group =
        cfg.mode == PersistMode::BbbProcSide ? "bbpb_proc" : "bbpb";
    std::printf("bbpb drains         %llu (+%llu forced, %llu coalesces)\n",
                (unsigned long long)sys.stats().lookup(bbpb_group, "drains"),
                (unsigned long long)sys.stats().lookup(bbpb_group,
                                                       "forced_drains"),
                (unsigned long long)sys.stats().lookup(bbpb_group,
                                                       "coalesces"));

    // End-of-run crash: what would the battery have to drain right now?
    CrashReport rep = sys.crashNow();
    std::printf("crash drain         %llu blocks, %.2f uJ, %.3f us\n",
                (unsigned long long)(rep.wpq_blocks + rep.bbpb_blocks +
                                     rep.cache_blocks_l1 +
                                     rep.cache_blocks_llc),
                rep.drain_energy_j * 1e6, rep.drain_time_s * 1e6);
    RecoveryResult res = wl->checkRecovery(sys.pmemImage());
    std::printf("recovery            %llu intact / %llu torn / %llu "
                "dangling -> %s\n",
                (unsigned long long)res.intact,
                (unsigned long long)res.torn,
                (unsigned long long)res.dangling,
                res.consistent() ? "CONSISTENT" : "CORRUPT");

    if (!trace_path.empty()) {
        writeTrace(recorder.trace(), trace_path);
        std::printf("trace               %zu ops -> %s\n",
                    recorder.trace().totalOps(), trace_path.c_str());
    }
    if (dump_stats) {
        std::printf("\n");
        sys.stats().dumpAll(std::cout);
    }
    if (!json_path.empty()) {
        BenchReport report("run_experiment");
        report.setConfig("workload", workload);
        report.setConfig("media", mediaKindName(cfg.media.kind));
        report.setConfig("mode", persistModeName(cfg.mode));
        report.setConfig("bbpb_entries", std::uint64_t{cfg.bbpb.entries});
        report.setConfig("ops_per_thread",
                         std::uint64_t{params.ops_per_thread});
        report.setConfig("initial_elements",
                         std::uint64_t{params.initial_elements});
        report.noteShards(cfg.shards);
        report.measured().merge(sys.snapshotMetrics(), "");
        report.writeFile(json_path);
    }
    return res.consistent() || cfg.mode == PersistMode::AdrUnsafe ? 0 : 1;
}
