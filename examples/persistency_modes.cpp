/**
 * @file
 * Example: a guided tour of the persistency trade-off space.
 *
 * Runs one workload across every persistency scheme the library models
 * (unsafe ADR, PMEM strict, eADR, BBB memory-side at two sizes, BBB
 * processor-side) and prints execution time, NVMM writes, bbPB behaviour,
 * and the crash-drain cost — the axes of the paper's Tables I and VII.
 *
 * Usage: persistency_modes [workload] [ops_per_thread] [--shards N]
 * `--jobs`/BBB_JOBS set the experiment-pool width (0 = hardware
 * concurrency); `--shards`/BBB_SHARDS the per-simulation sharded-kernel
 * width. Under `--strict-args` malformed values exit with status 2.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "api/cli.hh"
#include "api/experiment.hh"
#include "api/system.hh"

using namespace bbb;

namespace
{

struct ModePoint
{
    const char *label;
    PersistMode mode;
    unsigned bbpb_entries;
    bool auto_strict;
};

} // namespace

int
main(int argc, char **argv)
{
    std::string workload = "hashmap";
    if (argc > 1 && argv[1][0] != '-')
        workload = argv[1];
    WorkloadParams params = benchParams();
    if (argc > 2 && argv[2][0] != '-')
        params.ops_per_thread = std::strtoull(argv[2], nullptr, 10);

    const ModePoint points[] = {
        {"adr-unsafe (no persistency)", PersistMode::AdrUnsafe, 0, false},
        {"pmem-strict (clwb+sfence)", PersistMode::AdrPmem, 0, true},
        {"pmem-annotated (epoch-ish)", PersistMode::AdrPmem, 0, false},
        {"eadr (whole hierarchy)", PersistMode::Eadr, 0, false},
        {"bbb mem-side, 32 entries", PersistMode::BbbMemSide, 32, false},
        {"bbb mem-side, 1024 entries", PersistMode::BbbMemSide, 1024,
         false},
        {"bbb proc-side, 32 entries", PersistMode::BbbProcSide, 32, false},
    };

    std::printf("workload: %s, %llu ops/thread on 8 cores\n\n",
                workload.c_str(),
                (unsigned long long)params.ops_per_thread);
    std::printf("%-30s %14s %12s %11s %11s %11s\n", "scheme", "exec(us)",
                "nvmm_writes", "rejections", "coalesces", "stalls(us)");

    // The whole mode tour is one independent grid; --jobs or BBB_JOBS
    // picks the pool width (0 = hardware concurrency).
    unsigned jobs = bbb::cli::jobsArg(argc, argv);
    std::vector<ExperimentSpec> specs;
    for (const ModePoint &pt : points) {
        SystemConfig cfg = benchConfig(pt.mode, pt.bbpb_entries
                                                    ? pt.bbpb_entries
                                                    : 32);
        cfg.pmem_auto_strict = pt.auto_strict;
        cfg.shards = bbb::cli::shardsArg(argc, argv, cfg.num_cores);
        specs.push_back({cfg, workload, params});
    }
    std::vector<ExperimentResult> results = runExperiments(specs, jobs);

    double eadr_time = 0;
    for (std::size_t i = 0; i < std::size(points); ++i) {
        const ModePoint &pt = points[i];
        const ExperimentResult &r = results[i];
        double us = ticksToNs(r.exec_ticks) / 1000.0;
        if (pt.mode == PersistMode::Eadr)
            eadr_time = us;
        std::printf("%-30s %14.1f %12llu %11llu %11llu %11.1f\n", pt.label,
                    us, (unsigned long long)r.nvmm_writes,
                    (unsigned long long)r.bbpb_rejections,
                    (unsigned long long)r.bbpb_coalesces,
                    r.stall_ticks / 1000.0 / 1000.0);
    }

    if (eadr_time > 0)
        std::printf("\n(eADR is the no-persistency-cost reference: "
                    "%0.1f us)\n", eadr_time);
    return 0;
}
