/**
 * @file
 * Example: the crash-fault campaign driver and its repro-replay face.
 *
 * Campaign mode (default) sweeps seeded crash points x fault plans x
 * workloads on the parallel experiment pool, classifies every sample
 * against the recovery oracle (clean / degraded-prefix /
 * oracle-violation) and prints the tally plus a one-line repro for any
 * violation.
 *
 * Replay mode re-runs exactly one sample from a repro line printed by a
 * campaign:
 *
 *   fault_campaign --workload hashmap --seed 123456 \
 *                  --crash-tick 98765 --fault-plan battery_j=2e-6
 *
 * Usage:
 *   fault_campaign [--workloads NAME[,NAME...]] [--points N] [--ops N]
 *                  [--initial N] [--campaign-seed N] [--jobs N]
 *                  [--battery-fraction F] [--media direct|ftl]
 *                  [--verbose] [--json PATH]
 *   fault_campaign --workload NAME --seed S --crash-tick T
 *                  --fault-plan PLAN [--media direct|ftl]
 *
 * With --media ftl every sample runs on the FTL endurance backend (low
 * fixed endurance so wear retirement shows at campaign scale); the plan
 * token in each printed repro line carries media=ftl, so replaying the
 * line reproduces the same machine with no extra flags.
 *
 * Exit status: 0 when no sample violates the oracle, 1 otherwise.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "api/cli.hh"
#include "api/report.hh"
#include "fault/campaign.hh"

using namespace bbb;

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--workloads NAME[,NAME...]] [--points N] [--ops N]\n"
        "          [--initial N] [--campaign-seed N] [--jobs N]\n"
        "          [--shards N] [--spec on|off] [--battery-fraction F]\n"
        "          [--media direct|ftl]\n"
        "          [--verbose] [--json PATH]\n"
        "   or: %s --workload NAME --seed S --crash-tick T --fault-plan P\n"
        "          [--media direct|ftl]\n"
        "plans: none",
        argv0, argv0);
    for (const auto &np : faultPlanPresets()) {
        if (np.name != "none")
            std::fprintf(stderr, " %s", np.name.c_str());
    }
    std::fprintf(stderr, " or key=value[,key=value...]\n");
    std::exit(2);
}

/** Endurance rating used whenever this example runs media=ftl: low
 *  enough that campaign-scale write streams retire frames. */
constexpr std::uint64_t kFtlEnduranceCycles = 512;

/** The campaign machine: small enough that crash points land mid-run. */
SystemConfig
campaignCfg()
{
    SystemConfig cfg;
    cfg.num_cores = 2;
    cfg.l1d.size_bytes = 4_KiB;
    cfg.llc.size_bytes = 16_KiB;
    cfg.dram.size_bytes = 64_MiB;
    cfg.nvmm.size_bytes = 64_MiB;
    cfg.mode = PersistMode::BbbMemSide;
    cfg.bbpb.entries = 8;
    cfg.l1d.repl = ReplPolicy::Random;
    cfg.llc.repl = ReplPolicy::Random;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    CampaignSpec spec;
    spec.base = campaignCfg();
    spec.workloads = {"hashmap", "btree", "skiplist"};
    spec.params.ops_per_thread = 500;
    spec.params.initial_elements = 100;
    spec.params.array_elements = 1 << 12;
    spec.crash_points = 14;
    spec.min_crash_tick = nsToTicks(2000);
    spec.max_crash_tick = nsToTicks(120000);
    spec.campaign_seed = 1;

    unsigned jobs = 0;
    bool verbose = false;
    double battery_fraction = 0.0;
    std::string json_path;
    std::string media;

    // Replay flags (presence of --crash-tick selects replay mode).
    std::string replay_workload;
    std::uint64_t replay_seed = 0;
    Tick replay_tick = 0;
    bool replay = false;
    std::string replay_plan = "none";

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                usage(argv[0]);
            return argv[i];
        };
        if (arg == "--workloads") {
            spec.workloads = bbb::cli::splitList(next());
        } else if (arg == "--points") {
            spec.crash_points = static_cast<unsigned>(
                std::strtoul(next().c_str(), nullptr, 10));
        } else if (arg == "--ops") {
            spec.params.ops_per_thread =
                std::strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--initial") {
            spec.params.initial_elements =
                std::strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--campaign-seed") {
            spec.campaign_seed = std::strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--jobs") {
            jobs = static_cast<unsigned>(
                std::strtoul(next().c_str(), nullptr, 10));
        } else if (arg == "--shards") {
            next(); // value parsed/validated below by cli::shardsArg
        } else if (arg == "--spec") {
            next(); // value parsed/validated below by cli::specArg
        } else if (arg == "--battery-fraction") {
            battery_fraction = std::strtod(next().c_str(), nullptr);
        } else if (arg == "--media") {
            media = next();
            (void)mediaKindFromName(media); // validate (fatal on typo)
        } else if (arg == "--verbose") {
            verbose = true;
        } else if (arg == "--json") {
            json_path = next();
        } else if (arg == "--workload") {
            replay_workload = next();
        } else if (arg == "--seed") {
            replay_seed = std::strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--crash-tick") {
            replay_tick = std::strtoull(next().c_str(), nullptr, 10);
            replay = true;
        } else if (arg == "--fault-plan") {
            replay_plan = next();
        } else if (arg == "--strict-args") {
            // This loop is already strict: unknown or value-less flags
            // exit(2) via usage(). Accepted so campaign scripts can pass
            // the same flag set to drivers and cli::-based benches.
        } else {
            usage(argv[0]);
        }
    }

    // Sharded kernel width for every simulated sample (campaign and
    // replay): byte-neutral to results, so repro lines need not carry it.
    spec.base.shards =
        bbb::cli::shardsArg(argc, argv, spec.base.num_cores);
    spec.base.spec = bbb::cli::specArg(argc, argv, spec.base.shards);

    if (!media.empty())
        spec.base.media.kind = mediaKindFromName(media);

    if (replay) {
        if (replay_workload.empty())
            usage(argv[0]);
        CrashSample sample;
        sample.cfg = spec.base;
        sample.cfg.seed = replay_seed;
        sample.workload = replay_workload;
        sample.params = spec.params;
        sample.params.seed = replay_seed;
        sample.crash_tick = replay_tick;
        sample.plan = FaultPlan::parse(replay_plan);
        sample.plan_name = replay_plan;
        if (!media.empty() && sample.plan.media.empty())
            sample.plan.media = media;
        // FTL replays/campaigns use the example's fixed low endurance so
        // wear retirement is observable at campaign scale; the repro
        // line only needs to carry media=ftl.
        if (sample.plan.media == "ftl" || media == "ftl")
            sample.cfg.media.endurance_cycles = kFtlEnduranceCycles;

        CrashSampleResult r = runCrashSample(sample);
        std::printf("replay   %s\n", r.reproLine().c_str());
        std::printf("outcome  %s\n", campaignOutcomeName(r.outcome));
        std::printf("drain    %llu wpq + %llu bbpb blocks, %llu sacrificed,"
                    " %llu torn, %llu retries, %llu recrashes\n",
                    (unsigned long long)r.report.wpq_blocks,
                    (unsigned long long)r.report.bbpb_blocks,
                    (unsigned long long)r.report.sacrificed_blocks,
                    (unsigned long long)r.report.torn_media_blocks,
                    (unsigned long long)r.report.media_retries,
                    (unsigned long long)r.report.recrashes);
        std::printf("battery  %.3f uJ spent%s\n",
                    r.report.battery_spent_j * 1e6,
                    r.report.battery_exhausted ? " (EXHAUSTED)" : "");
        std::printf("recovery raw %llu/%llu/%llu  repaired %llu/%llu/%llu"
                    "  (intact/torn/dangling)\n",
                    (unsigned long long)r.raw.intact,
                    (unsigned long long)r.raw.torn,
                    (unsigned long long)r.raw.dangling,
                    (unsigned long long)r.repaired.intact,
                    (unsigned long long)r.repaired.torn,
                    (unsigned long long)r.repaired.dangling);
        std::printf("image    fingerprint %016llx, %llu damaged blocks\n",
                    (unsigned long long)r.image_fingerprint,
                    (unsigned long long)r.damaged_blocks);
        if (sample.plan.media == "ftl")
            std::printf("media    ftl: %llu frames retired for wear\n",
                        (unsigned long long)r.retired_frames);
        return r.outcome == CampaignOutcome::OracleViolation ? 1 : 0;
    }

    // Optionally append an undersized battery sized for THIS machine to
    // the preset family (fraction of the worst-case crash budget).
    spec.plans = faultPlanPresets();
    if (battery_fraction > 0.0) {
        NamedFaultPlan np;
        np.name = "undersized-battery";
        np.plan = undersizedBatteryPlan(spec.base, battery_fraction);
        spec.plans.push_back(np);
    }
    if (!media.empty()) {
        // Stamp the backend into every plan token so each printed repro
        // line is a complete one-liner (`--media ftl` optional on replay).
        for (NamedFaultPlan &np : spec.plans)
            np.plan.media = media;
        if (media == "ftl")
            spec.base.media.endurance_cycles = kFtlEnduranceCycles;
    }

    CampaignSummary summary;
    double secs = timedSeconds(
        [&] { summary = runCrashCampaign(spec, jobs); });

    if (verbose) {
        for (const CrashSampleResult &r : summary.results) {
            std::printf("%-16s %-20s %-16s %s\n", r.workload.c_str(),
                        r.plan_name.c_str(),
                        campaignOutcomeName(r.outcome),
                        r.reproLine().c_str());
        }
    }

    std::printf("campaign %zu samples: %llu clean, %llu degraded-prefix, "
                "%llu oracle-violations\n",
                summary.results.size(),
                (unsigned long long)summary.clean,
                (unsigned long long)summary.degraded,
                (unsigned long long)summary.violations);
    if (media == "ftl") {
        std::uint64_t retired = 0;
        for (const CrashSampleResult &r : summary.results)
            retired += r.retired_frames;
        std::printf("media    ftl (endurance %llu): %llu frames retired "
                    "across the campaign\n",
                    (unsigned long long)kFtlEnduranceCycles,
                    (unsigned long long)retired);
    }

    if (!json_path.empty()) {
        BenchReport rep("fault_campaign");
        std::string names;
        for (const std::string &w : spec.workloads)
            names += (names.empty() ? "" : ",") + w;
        rep.setConfig("workloads", names);
        rep.setConfig("crash_points", std::uint64_t{spec.crash_points});
        rep.setConfig("ops_per_thread",
                      std::uint64_t{spec.params.ops_per_thread});
        rep.setConfig("initial_elements",
                      std::uint64_t{spec.params.initial_elements});
        rep.setConfig("campaign_seed", std::uint64_t{spec.campaign_seed});
        rep.setConfig("bbpb_entries", std::uint64_t{spec.base.bbpb.entries});
        rep.setConfig("media", mediaKindName(spec.base.media.kind));
        rep.measured().merge(summary.metrics, "");
        rep.noteRun(secs, jobs);
        rep.noteShards(spec.base.shards);
        rep.writeFile(json_path);
    }

    if (const CrashSampleResult *bug = summary.firstViolation()) {
        std::printf("VIOLATION repro: %s %s\n", argv[0],
                    bug->reproLine().c_str());
        return 1;
    }
    return 0;
}
