/**
 * @file
 * Example: crash-recovery sweep over a persistent hash map.
 *
 * Runs the Table IV hashmap workload under several persistency schemes,
 * injecting a power failure at a series of points in the run. After each
 * crash the recovery checker walks the post-crash NVMM image from the
 * roots and classifies every reachable node. Also prints what the
 * flush-on-fail drain moved and what it cost (energy/time) — BBB drains
 * a few kilobytes where eADR drains megabytes.
 *
 * Run: crash_recovery [ops_per_thread] [crash_points]
 */

#include <cstdio>
#include <cstdlib>

#include "api/system.hh"
#include "workloads/workload.hh"

using namespace bbb;

int
main(int argc, char **argv)
{
    std::uint64_t ops = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                 : 4000;
    int crash_points = argc > 2 ? std::atoi(argv[2]) : 4;

    WorkloadParams params;
    params.ops_per_thread = ops;
    params.initial_elements = 2000;

    std::printf("%-14s %10s %10s %8s %8s %8s | %10s %12s %12s\n", "mode",
                "crash(us)", "recovered", "torn", "dangling", "verdict",
                "drained", "energy", "time");

    for (PersistMode mode :
         {PersistMode::AdrUnsafe, PersistMode::AdrPmem, PersistMode::Eadr,
          PersistMode::BbbMemSide, PersistMode::BbbProcSide}) {
        for (int i = 1; i <= crash_points; ++i) {
            SystemConfig cfg;
            cfg.num_cores = 4;
            cfg.mode = mode;
            // Small caches + random replacement: structures overflow the
            // hierarchy, so unsafe ADR's eviction-order persistence has
            // every chance to tear (and the safe schemes must not).
            cfg.l1d.size_bytes = 4_KiB;
            cfg.llc.size_bytes = 16_KiB;
            cfg.l1d.repl = ReplPolicy::Random;
            cfg.llc.repl = ReplPolicy::Random;
            cfg.dram.size_bytes = 256_MiB;
            cfg.nvmm.size_bytes = 256_MiB;

            System sys(cfg);
            auto wl = makeWorkload("hashmap", params);
            wl->install(sys);
            CrashReport rep =
                sys.runAndCrashAt(nsToTicks(40000ull * i * i));
            RecoveryResult res = wl->checkRecovery(sys.pmemImage());

            char drained[32], energy[32], time_s[32];
            std::snprintf(drained, sizeof(drained), "%llu blk",
                          (unsigned long long)(rep.wpq_blocks +
                                               rep.bbpb_blocks +
                                               rep.cache_blocks_l1 +
                                               rep.cache_blocks_llc));
            std::snprintf(energy, sizeof(energy), "%.2f uJ",
                          rep.drain_energy_j * 1e6);
            std::snprintf(time_s, sizeof(time_s), "%.3f us",
                          rep.drain_time_s * 1e6);

            std::printf("%-14s %10.1f %10llu %8llu %8llu %8s | %10s %12s "
                        "%12s\n",
                        persistModeName(mode),
                        ticksToNs(rep.crash_tick) / 1000.0,
                        (unsigned long long)res.intact,
                        (unsigned long long)res.torn,
                        (unsigned long long)res.dangling,
                        res.consistent() ? "OK" : "CORRUPT", drained,
                        energy, time_s);
        }
    }

    std::printf("\nExpected: adr-unsafe eventually CORRUPT; every other "
                "scheme OK at every crash point.\n"
                "BBB drains orders of magnitude less than eADR at crash "
                "time (Tables VII/VIII).\n");
    return 0;
}
