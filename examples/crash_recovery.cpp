/**
 * @file
 * Example: the full crash–recover–resume lifecycle over a persistent
 * hash map.
 *
 * For every persistency scheme and a series of crash points:
 *
 *   1. run the Table IV hashmap workload and fail power mid-run;
 *   2. hand the post-crash NVMM image to the RecoveryManager, which
 *      walks it, unlinks anything torn or dangling (graceful
 *      degradation — it never aborts, whatever the image holds), and
 *      restores the allocator frontiers;
 *   3. reboot a fresh machine seeded with the recovered image, resume
 *      the workload on it, and run a second life to completion;
 *   4. power down cleanly and verify the final image is consistent.
 *
 * The safe schemes (everything except adr-unsafe) must come back
 * `clean` — their flush-on-fail drain preserves persist order, so the
 * image needs no repairs. adr-unsafe demonstrates the degraded path:
 * its arbitrary writeback order tears the structure, recovery repairs
 * by discarding the damage, and the resumed life still finishes on the
 * survivors.
 *
 * Run: crash_recovery [ops_per_thread] [crash_points]
 * Exit status: 0 when every safe mode recovers clean and every mode
 * resumes, 1 otherwise.
 */

#include <cstdio>
#include <cstdlib>

#include "api/system.hh"
#include "recover/recovery_manager.hh"
#include "workloads/workload.hh"

using namespace bbb;

int
main(int argc, char **argv)
{
    std::uint64_t ops = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                 : 4000;
    int crash_points = argc > 2 ? std::atoi(argv[2]) : 4;

    WorkloadParams params;
    params.ops_per_thread = ops;
    params.initial_elements = 2000;

    std::printf("%-14s %10s %6s %8s | %-18s %8s %8s | %8s\n", "mode",
                "crash(us)", "torn", "dangling", "recovery", "repairs",
                "dropped", "resumed");

    bool failed = false;
    for (PersistMode mode :
         {PersistMode::AdrUnsafe, PersistMode::AdrPmem, PersistMode::Eadr,
          PersistMode::BbbMemSide, PersistMode::BbbProcSide}) {
        bool safe = mode != PersistMode::AdrUnsafe;
        for (int i = 1; i <= crash_points; ++i) {
            SystemConfig cfg;
            cfg.num_cores = 4;
            cfg.mode = mode;
            // Small caches + random replacement: structures overflow the
            // hierarchy, so unsafe ADR's eviction-order persistence has
            // every chance to tear (and the safe schemes must not).
            cfg.l1d.size_bytes = 4_KiB;
            cfg.llc.size_bytes = 16_KiB;
            cfg.l1d.repl = ReplPolicy::Random;
            cfg.llc.repl = ReplPolicy::Random;
            cfg.dram.size_bytes = 256_MiB;
            cfg.nvmm.size_bytes = 256_MiB;

            // Life 1: install and crash mid-run.
            System sys(cfg);
            auto wl = makeWorkload("hashmap", params);
            wl->install(sys);
            CrashReport rep =
                sys.runAndCrashAt(nsToTicks(40000ull * i * i));
            RecoveryResult raw = wl->checkRecovery(sys.pmemImage());

            // Recover: repair the image in place, never abort.
            BackingStore image = sys.image().clone();
            RecoveryManager mgr(image, sys.addrMap(), cfg.num_cores);
            RecoverOutcome rec = mgr.recover(*wl);

            // Life 2: reboot on the recovered image and run to the end.
            const char *resumed = "-";
            if (rec.resumable()) {
                SystemConfig cfg2 = cfg;
                cfg2.seed = cfg.seed + 1; // new keys for the second life
                System sys2(cfg2);
                reseedSystem(sys2, image, rec.frontiers);
                wl->resume(sys2);
                sys2.run();
                sys2.crashNow(); // clean power-down: drain everything
                RecoveryResult fin = wl->checkRecovery(sys2.pmemImage());
                bool ok = fin.consistent();
                resumed = ok ? "OK" : "CORRUPT";
                // adr-unsafe may legitimately tear again on the way
                // down; the safe schemes must not.
                if (safe && !ok)
                    failed = true;
            } else {
                // Graceful degradation means this must never happen.
                failed = true;
            }

            bool clean_required =
                safe && rec.status != RecoveryStatus::Clean;
            if (clean_required)
                failed = true;

            std::printf("%-14s %10.1f %6llu %8llu | %-18s %8llu %8llu | "
                        "%8s\n",
                        persistModeName(mode),
                        ticksToNs(rep.crash_tick) / 1000.0,
                        (unsigned long long)raw.torn,
                        (unsigned long long)raw.dangling,
                        recoveryStatusName(rec.status),
                        (unsigned long long)rec.repairs,
                        (unsigned long long)rec.dropped, resumed);
        }
    }

    std::printf("\nExpected: every safe scheme recovers clean and resumes"
                " OK at every crash point;\nadr-unsafe tears, recovery "
                "repairs by unlinking the damage, and the survivors\n"
                "still carry a full second life (graceful degradation).\n");
    return failed ? 1 : 0;
}
