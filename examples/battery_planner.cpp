/**
 * @file
 * Example: battery provisioning planner.
 *
 * Give it a platform description (cores, cache sizes, memory channels)
 * and a bbPB size; it prints the full flush-on-fail provisioning table:
 * worst-case drain energy, drain time, and battery volume/footprint for
 * both technologies, for eADR and for BBB — the Section IV-C methodology
 * as a reusable tool.
 *
 * Run: battery_planner [cores] [l1_kb_per_core] [l2_mb_total] \
 *                      [l3_mb_total] [channels] [bbpb_entries]
 * Defaults reproduce the paper's mobile-class platform with 32 entries.
 */

#include <cstdio>
#include <cstdlib>

#include "energy/energy_model.hh"

using namespace bbb;

int
main(int argc, char **argv)
{
    PlatformSpec p = mobilePlatform();
    unsigned entries = 32;
    if (argc > 1)
        p.cores = static_cast<unsigned>(std::atoi(argv[1]));
    if (argc > 2)
        p.l1_total_bytes = p.cores * std::strtoull(argv[2], nullptr, 10) *
                           1024ull;
    if (argc > 3)
        p.l2_total_bytes = std::strtoull(argv[3], nullptr, 10) * 1024ull *
                           1024ull;
    if (argc > 4)
        p.l3_total_bytes = std::strtoull(argv[4], nullptr, 10) * 1024ull *
                           1024ull;
    if (argc > 5)
        p.mem_channels = static_cast<unsigned>(std::atoi(argv[5]));
    if (argc > 6)
        entries = static_cast<unsigned>(std::atoi(argv[6]));
    p.name = "custom";

    DrainCostModel model(p);

    std::printf("Platform: %u cores, L1 total %.0f kB, L2 %.1f MB, "
                "L3 %.1f MB, %u channels\n",
                p.cores, p.l1_total_bytes / 1024.0,
                p.l2_total_bytes / 1048576.0, p.l3_total_bytes / 1048576.0,
                p.mem_channels);
    std::printf("bbPB: %u entries/core = %.1f kB in the persistence "
                "domain\n\n",
                entries, model.bbbBytes(entries) / 1024.0);

    std::printf("%-24s %16s %16s\n", "", "eADR", "BBB");
    std::printf("%-24s %13.3f mJ %13.3f mJ\n", "avg drain energy",
                model.eadrDrainEnergyJ() * 1e3,
                model.bbbDrainEnergyJ(entries) * 1e3);
    std::printf("%-24s %13.3f us %13.3f us\n", "avg drain time",
                model.eadrDrainTimeS() * 1e6,
                model.bbbDrainTimeS(entries) * 1e6);
    for (BatteryTech t : {BatteryTech::SuperCap, BatteryTech::LiThin}) {
        double ve = model.eadrBatteryVolumeMm3(t);
        double vb = model.bbbBatteryVolumeMm3(t, entries);
        std::printf("%-10s %-12s %11.3f mm3 %11.3f mm3\n", "battery",
                    batteryTechName(t), ve, vb);
        std::printf("%-10s %-12s %12.1f %%core %10.1f %%core\n",
                    "footprint", batteryTechName(t),
                    model.areaRatioToCore(ve) * 100.0,
                    model.areaRatioToCore(vb) * 100.0);
    }
    std::printf("\nBBB battery advantage: %.0fx energy, %.0fx volume.\n",
                model.eadrDrainEnergyJ() / model.bbbDrainEnergyJ(entries),
                model.eadrBatteryVolumeMm3(BatteryTech::LiThin) /
                    model.bbbBatteryVolumeMm3(BatteryTech::LiThin,
                                              entries));
    return 0;
}
