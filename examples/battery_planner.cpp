/**
 * @file
 * Example: battery provisioning planner under real power traces.
 *
 * The Section IV-C closed-form provisioning (worst-case drain energy →
 * battery volume) answers "how big could the battery ever need to be?".
 * This planner answers the operational question: *how small can it be*
 * before a given workload, persistency mode, and power environment stop
 * surviving outages cleanly?
 *
 * It sweeps power-trace lifetime campaigns (src/recover/lifetime.hh)
 * over traces x battery capacities x degradation policies x workloads x
 * BBB modes. Every outage in a trace becomes a crash round whose drain
 * budget is the charge the battery actually held; a lifetime is *viable*
 * when every round recovered clean with zero sacrificed blocks and the
 * trace never starved the machine of charge. The headline table is the
 * minimum viable capacity per (workload, mode, trace, policy) cell —
 * i.e. what a provisioning engineer would buy.
 *
 * Usage:
 *   battery_planner [--traces T[,T...]] [--battery-caps J[,J...]]
 *                   [--policies P[,P...]] [--workloads W[,W...]]
 *                   [--modes M[,M...]] [--rounds K] [--lifetimes N]
 *                   [--ops N] [--campaign-seed N] [--jobs N] [--shards N]
 *                   [--fast] [--strict-args] [--json PATH]
 *
 * Exit status: 0 when no lifetime violates the durability oracle,
 * 1 otherwise (undersized batteries must degrade, never corrupt).
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "api/cli.hh"
#include "api/report.hh"
#include "energy/energy_model.hh"
#include "recover/lifetime.hh"

using namespace bbb;

namespace
{

/** Small machine so trace windows land mid-run (same as the campaigns). */
SystemConfig
plannerCfg()
{
    SystemConfig cfg;
    cfg.num_cores = 2;
    cfg.l1d.size_bytes = 4_KiB;
    cfg.llc.size_bytes = 16_KiB;
    cfg.dram.size_bytes = 64_MiB;
    cfg.nvmm.size_bytes = 64_MiB;
    cfg.bbpb.entries = 8;
    cfg.l1d.repl = ReplPolicy::Random;
    cfg.llc.repl = ReplPolicy::Random;
    return cfg;
}

/** One sweep cell: every capacity shares the rest of the coordinates. */
struct CellKey
{
    std::string workload;
    PersistMode mode;
    std::string trace;
    DegradePolicy policy;

    bool
    matches(const LifetimeResult &r) const
    {
        return r.workload == workload && r.mode == mode &&
               r.plan.trace == trace && r.plan.policy == policy;
    }
};

/** A capacity is viable when every lifetime at it survived cleanly. */
bool
capViable(const std::vector<LifetimeResult> &results, const CellKey &key,
          double cap)
{
    bool any = false;
    for (const LifetimeResult &r : results) {
        if (!key.matches(r) || r.plan.battery_cap_j != cap)
            continue;
        any = true;
        if (r.outcome != LifetimeOutcome::Clean || r.power.starved)
            return false;
        for (const LifetimeRound &round : r.round_log) {
            if (round.report.sacrificed_blocks != 0)
                return false;
        }
    }
    return any;
}

/** Report-friendly metric path segment for one cell. */
std::string
cellPath(const CellKey &key)
{
    // Trace tokens may carry ':' parameters; metric paths split on '.'
    // only, so the token passes through unchanged.
    return key.workload + "." + std::string(persistModeName(key.mode)) +
           "." + key.trace + "." + degradePolicyName(key.policy);
}

} // namespace

int
main(int argc, char **argv)
{
    const bool fast = cli::fastMode(argc, argv);

    LifetimeSpec spec;
    spec.base = plannerCfg();
    spec.workloads =
        cli::splitList(cli::stringOpt(argc, argv, "--workloads",
                                      fast ? "hashmap"
                                           : "hashmap,linkedlist"));
    spec.modes = {PersistMode::BbbMemSide, PersistMode::BbbProcSide};
    std::string modes_arg = cli::stringOpt(argc, argv, "--modes");
    if (!modes_arg.empty()) {
        spec.modes.clear();
        for (const std::string &m : cli::splitList(modes_arg))
            spec.modes.push_back(persistModeFromName(m));
    }
    // Trace tokens never contain ',' (PowerTrace enforces it), so the
    // standard comma list composes cleanly with parameterized presets.
    spec.traces = cli::splitList(
        cli::stringOpt(argc, argv, "--traces",
                       fast ? "brownout:cycles=2,square:cycles=2"
                            : "brownout,square,outages"));
    spec.battery_caps = cli::realListArg(
        argc, argv, "--battery-caps",
        fast ? std::vector<double>{2e-6, 50e-6}
             : std::vector<double>{1e-6, 5e-6, 20e-6, 50e-6});
    spec.policies = {DegradePolicy::None, DegradePolicy::DrainOldest};
    std::string pols_arg = cli::stringOpt(argc, argv, "--policies");
    if (!pols_arg.empty()) {
        spec.policies.clear();
        for (const std::string &p : cli::splitList(pols_arg))
            spec.policies.push_back(parseDegradePolicy(p));
    }
    spec.rounds = static_cast<unsigned>(std::strtoul(
        cli::stringOpt(argc, argv, "--rounds", fast ? "2" : "3").c_str(),
        nullptr, 10));
    spec.lifetimes = static_cast<unsigned>(std::strtoul(
        cli::stringOpt(argc, argv, "--lifetimes", "1").c_str(), nullptr,
        10));
    spec.params.ops_per_thread = std::strtoull(
        cli::stringOpt(argc, argv, "--ops", fast ? "250" : "400").c_str(),
        nullptr, 10);
    spec.params.initial_elements = 80;
    spec.campaign_seed = std::strtoull(
        cli::stringOpt(argc, argv, "--campaign-seed", "1").c_str(),
        nullptr, 10);
    unsigned jobs = cli::jobsArg(argc, argv);
    spec.base.shards = cli::shardsArg(argc, argv, spec.base.num_cores);

    // Condensed Section IV-C analytic header: the closed-form worst case
    // the trace sweep below stress-tests from the other side.
    {
        DrainCostModel model(mobilePlatform());
        const unsigned entries = spec.base.bbpb.entries;
        std::printf(
            "analytic worst case (mobile, %u-entry bbPBs): drain %.3f uJ "
            "in %.3f us; eADR needs %.0fx the energy\n",
            entries, model.bbbDrainEnergyJ(entries) * 1e6,
            model.bbbDrainTimeS(entries) * 1e6,
            model.eadrDrainEnergyJ() / model.bbbDrainEnergyJ(entries));
    }

    LifetimeSummary summary;
    double secs =
        timedSeconds([&] { summary = runLifetimeCampaign(spec, jobs); });

    std::printf("\nplanner campaign: %zu lifetimes in %.2f s — %llu "
                "clean, %llu degraded-repaired, %llu oracle-violations\n",
                summary.results.size(), secs,
                (unsigned long long)summary.clean,
                (unsigned long long)summary.degraded,
                (unsigned long long)summary.violations);

    // Min-viable-battery table: smallest swept capacity at which every
    // lifetime of the cell survives every outage with nothing sacrificed.
    BenchReport rep("battery_planner");
    {
        std::string caps;
        for (double c : spec.battery_caps)
            caps += (caps.empty() ? "" : ",") + compactDouble(c);
        rep.setConfig("battery_caps_j", caps);
    }
    rep.setConfig("rounds", std::uint64_t{spec.rounds});
    rep.setConfig("lifetimes", std::uint64_t{spec.lifetimes});
    rep.setConfig("ops_per_thread",
                  std::uint64_t{spec.params.ops_per_thread});
    rep.setConfig("campaign_seed", std::uint64_t{spec.campaign_seed});
    rep.setConfig("bbpb_entries", std::uint64_t{spec.base.bbpb.entries});

    std::printf("\n%-12s %-14s %-22s %-13s %s\n", "workload", "mode",
                "trace", "policy", "min viable battery");
    std::uint64_t unviable_cells = 0;
    for (const std::string &w : spec.workloads) {
        for (PersistMode mode : spec.modes) {
            for (const std::string &trace : spec.traces) {
                for (DegradePolicy pol : spec.policies) {
                    CellKey key{w, mode, trace, pol};
                    double viable = -1.0;
                    for (double cap : spec.battery_caps) {
                        if (capViable(summary.results, key, cap)) {
                            viable = cap;
                            break;
                        }
                    }
                    if (viable >= 0.0) {
                        std::printf("%-12s %-14s %-22s %-13s %9.2f uJ\n",
                                    w.c_str(), persistModeName(mode),
                                    trace.c_str(),
                                    degradePolicyName(pol),
                                    viable * 1e6);
                        rep.measured().setReal(
                            "min_viable." + cellPath(key) + ".cap_j",
                            viable);
                    } else {
                        std::printf("%-12s %-14s %-22s %-13s %12s\n",
                                    w.c_str(), persistModeName(mode),
                                    trace.c_str(),
                                    degradePolicyName(pol),
                                    "> sweep max");
                        ++unviable_cells;
                    }
                }
            }
        }
    }
    rep.measured().setCount("min_viable.unviable_cells", unviable_cells);
    rep.measured().merge(summary.metrics, "");
    rep.noteRun(secs, jobs);
    rep.noteShards(spec.base.shards);
    rep.emitIfRequested(cli::jsonPathArg(argc, argv));

    if (const LifetimeResult *bug = summary.firstViolation()) {
        std::printf("VIOLATION repro: lifetime_campaign %s\n",
                    bug->reproLine().c_str());
        return 1;
    }
    return 0;
}
