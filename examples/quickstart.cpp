/**
 * @file
 * Quickstart: the paper's Figures 2 and 3, executable.
 *
 * Builds a persistent linked list on the simulated machine three ways:
 *
 *   1. Figure 2 verbatim (no flushes/fences) on a plain ADR machine —
 *      crash it mid-run and watch the head pointer dangle into an
 *      unpersisted node.
 *   2. Figure 3 (writeBack + persistBarrier added) on the same machine —
 *      the list survives any crash, at a performance cost.
 *   3. Figure 2 verbatim on a BBB machine — no persistency instructions,
 *      and the list still survives: commit order *is* persist order.
 *
 * Run: quickstart [appends_per_thread] [--shards N]
 * `--shards` (or BBB_SHARDS) runs the simulations on the sharded
 * kernel; results are byte-identical at every width. `--strict-args`
 * makes a malformed --shards value fatal (exit 2).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "api/cli.hh"
#include "api/system.hh"
#include "workloads/linkedlist.hh"

using namespace bbb;

namespace
{

struct Outcome
{
    Tick exec;
    RecoveryResult recovery;
};

Outcome
buildListAndCrash(PersistMode mode, std::uint64_t appends, Tick crash_at,
                  unsigned shards)
{
    SystemConfig cfg;
    cfg.num_cores = 2;
    cfg.shards = shards;
    cfg.l1d.size_bytes = 8_KiB;
    cfg.llc.size_bytes = 32_KiB;
    cfg.dram.size_bytes = 64_MiB;
    cfg.nvmm.size_bytes = 64_MiB;
    cfg.mode = mode;
    // Random replacement makes the unsafe variant fail fast (writeback
    // order decorrelates from program order).
    cfg.l1d.repl = ReplPolicy::Random;
    cfg.llc.repl = ReplPolicy::Random;

    System sys(cfg);
    WorkloadParams params;
    params.ops_per_thread = appends;
    params.initial_elements = 0;
    LinkedListWorkload list(params);
    list.install(sys);
    CrashReport rep = sys.runAndCrashAt(crash_at);

    return {rep.crash_tick, list.checkRecovery(sys.pmemImage())};
}

void
report(const char *label, const Outcome &o)
{
    std::printf("%-34s crash@%8.1fus  nodes recovered: %6llu  "
                "torn: %llu  dangling: %llu  -> %s\n",
                label, ticksToNs(o.exec) / 1000.0,
                (unsigned long long)o.recovery.intact,
                (unsigned long long)o.recovery.torn,
                (unsigned long long)o.recovery.dangling,
                o.recovery.consistent() ? "CONSISTENT" : "CORRUPT");
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t appends = 20000;
    if (argc > 1 && argv[1][0] != '-')
        appends = std::strtoull(argv[1], nullptr, 10);
    unsigned shards = bbb::cli::shardsArg(argc, argv, 2);
    Tick crash_at = nsToTicks(120000); // mid-run

    std::printf("Appending %llu nodes per thread, crashing mid-run.\n\n",
                (unsigned long long)appends);

    // Try several crash points for the unsafe variant; persist-order
    // violations are intermittent (that is exactly why they are painful
    // to debug, Section II-A).
    bool corrupt_seen = false;
    Outcome worst{};
    for (int i = 1; i <= 5; ++i) {
        Outcome o = buildListAndCrash(PersistMode::AdrUnsafe, appends,
                                      crash_at * i / 3, shards);
        if (!o.recovery.consistent()) {
            corrupt_seen = true;
            worst = o;
            break;
        }
        worst = o;
    }
    report("Fig. 2 on ADR (no barriers):", worst);
    if (corrupt_seen) {
        std::printf("   ^ the head pointer persisted before the node it "
                    "points to: the list is lost.\n");
    }

    Outcome pmem =
        buildListAndCrash(PersistMode::AdrPmem, appends, crash_at, shards);
    report("Fig. 3 on ADR (clwb + sfence):", pmem);

    Outcome bbb =
        buildListAndCrash(PersistMode::BbbMemSide, appends, crash_at, shards);
    report("Fig. 2 on BBB (no barriers!):", bbb);

    std::printf("\nBBB recovered %llu nodes where PMEM recovered %llu in "
                "the same wall-clock window:\n"
                "strict persistency without the flush/fence tax.\n",
                (unsigned long long)bbb.recovery.intact,
                (unsigned long long)pmem.recovery.intact);
    return corrupt_seen && pmem.recovery.consistent() &&
                   bbb.recovery.consistent()
               ? 0
               : 1;
}
